//! Hand-written lexer for the method language.

use crate::error::ParseError;
use std::fmt;

/// Token kinds. Keywords are distinguished from identifiers at lex time.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // literals / names
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    // keywords
    KwClass,
    KwInherits,
    KwFields,
    KwMethod,
    KwIs,
    KwRedefined,
    KwAs,
    KwEnd,
    KwSend,
    KwTo,
    KwSelf,
    KwIf,
    KwThen,
    KwElse,
    KwWhile,
    KwDo,
    KwVar,
    KwReturn,
    KwSkip,
    KwTrue,
    KwFalse,
    KwNil,
    KwAnd,
    KwOr,
    KwNot,
    // punctuation
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Dot,
    Assign, // :=
    Eq,     // =
    Ne,     // <>
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::Str(s) => write!(f, "string {s:?}"),
            Tok::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    Tok::KwClass => "class",
                    Tok::KwInherits => "inherits",
                    Tok::KwFields => "fields",
                    Tok::KwMethod => "method",
                    Tok::KwIs => "is",
                    Tok::KwRedefined => "redefined",
                    Tok::KwAs => "as",
                    Tok::KwEnd => "end",
                    Tok::KwSend => "send",
                    Tok::KwTo => "to",
                    Tok::KwSelf => "self",
                    Tok::KwIf => "if",
                    Tok::KwThen => "then",
                    Tok::KwElse => "else",
                    Tok::KwWhile => "while",
                    Tok::KwDo => "do",
                    Tok::KwVar => "var",
                    Tok::KwReturn => "return",
                    Tok::KwSkip => "skip",
                    Tok::KwTrue => "true",
                    Tok::KwFalse => "false",
                    Tok::KwNil => "nil",
                    Tok::KwAnd => "and",
                    Tok::KwOr => "or",
                    Tok::KwNot => "not",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::Colon => ":",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Dot => ".",
                    Tok::Assign => ":=",
                    Tok::Eq => "=",
                    Tok::Ne => "<>",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token with its source position (1-based).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "class" => Tok::KwClass,
        "inherits" => Tok::KwInherits,
        "fields" => Tok::KwFields,
        "method" => Tok::KwMethod,
        "is" => Tok::KwIs,
        "redefined" => Tok::KwRedefined,
        "as" => Tok::KwAs,
        "end" => Tok::KwEnd,
        "send" => Tok::KwSend,
        "to" => Tok::KwTo,
        "self" => Tok::KwSelf,
        "if" => Tok::KwIf,
        "then" => Tok::KwThen,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "do" => Tok::KwDo,
        "var" => Tok::KwVar,
        "return" => Tok::KwReturn,
        "skip" => Tok::KwSkip,
        "true" => Tok::KwTrue,
        "false" => Tok::KwFalse,
        "nil" => Tok::KwNil,
        "and" => Tok::KwAnd,
        "or" => Tok::KwOr,
        "not" => Tok::KwNot,
        _ => return None,
    })
}

/// Lexes a whole source string. Comments run from `--` to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            out.push(Spanned {
                tok: $tok,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let b = bytes[i];
        let (tl, tc) = (line, col);
        match b {
            b'\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                col += 1;
                i += 1;
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                push!(Tok::LBrace, tl, tc);
                i += 1;
                col += 1;
            }
            b'}' => {
                push!(Tok::RBrace, tl, tc);
                i += 1;
                col += 1;
            }
            b'(' => {
                push!(Tok::LParen, tl, tc);
                i += 1;
                col += 1;
            }
            b')' => {
                push!(Tok::RParen, tl, tc);
                i += 1;
                col += 1;
            }
            b';' => {
                push!(Tok::Semi, tl, tc);
                i += 1;
                col += 1;
            }
            b',' => {
                push!(Tok::Comma, tl, tc);
                i += 1;
                col += 1;
            }
            b'.' => {
                push!(Tok::Dot, tl, tc);
                i += 1;
                col += 1;
            }
            b'+' => {
                push!(Tok::Plus, tl, tc);
                i += 1;
                col += 1;
            }
            b'-' => {
                push!(Tok::Minus, tl, tc);
                i += 1;
                col += 1;
            }
            b'*' => {
                push!(Tok::Star, tl, tc);
                i += 1;
                col += 1;
            }
            b'/' => {
                push!(Tok::Slash, tl, tc);
                i += 1;
                col += 1;
            }
            b'%' => {
                push!(Tok::Percent, tl, tc);
                i += 1;
                col += 1;
            }
            b'=' => {
                push!(Tok::Eq, tl, tc);
                i += 1;
                col += 1;
            }
            b':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Assign, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Colon, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Le, tl, tc);
                    i += 2;
                    col += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push!(Tok::Ne, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Lt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Tok::Ge, tl, tc);
                    i += 2;
                    col += 2;
                } else {
                    push!(Tok::Gt, tl, tc);
                    i += 1;
                    col += 1;
                }
            }
            b'"' => {
                let mut s = String::new();
                i += 1;
                col += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", tl, tc));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            col += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1];
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(ParseError::new(
                                        format!("unknown escape `\\{}`", other as char),
                                        line,
                                        col,
                                    ))
                                }
                            });
                            i += 2;
                            col += 2;
                        }
                        b'\n' => {
                            return Err(ParseError::new("unterminated string literal", tl, tc))
                        }
                        other => {
                            s.push(other as char);
                            i += 1;
                            col += 1;
                        }
                    }
                }
                push!(Tok::Str(s), tl, tc);
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::new("bad float literal", tl, tc))?;
                    push!(Tok::Float(v), tl, tc);
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::new("integer literal overflows i64", tl, tc))?;
                    push!(Tok::Int(v), tl, tc);
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &src[start..i];
                col += (i - start) as u32;
                match keyword(text) {
                    Some(kw) => push!(kw, tl, tc),
                    None => push!(Tok::Ident(text.to_string()), tl, tc),
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    tl,
                    tc,
                ))
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("send m2 to self"),
            vec![
                Tok::KwSend,
                Tok::Ident("m2".into()),
                Tok::KwTo,
                Tok::KwSelf,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a := b <= c <> d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Assign,
                Tok::Ident("b".into()),
                Tok::Le,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 23 4.5"),
            vec![Tok::Int(1), Tok::Int(23), Tok::Float(4.5), Tok::Eof]
        );
        // `4.` followed by ident is Int Dot Ident (prefixed send syntax).
        assert_eq!(
            toks("c1.m2"),
            vec![
                Tok::Ident("c1".into()),
                Tok::Dot,
                Tok::Ident("m2".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            toks(r#""hi\n\"x\"""#),
            vec![Tok::Str("hi\n\"x\"".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
        assert!(lex("\"bad\\q\"").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a -- comment := ignored\n; b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Semi,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn bad_char_rejected() {
        let e = lex("a $ b").unwrap_err();
        assert!(e.msg.contains('$'));
        assert_eq!(e.col, 3);
    }

    #[test]
    fn minus_vs_comment() {
        assert_eq!(
            toks("a - b"),
            vec![
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Eof
            ]
        );
        assert_eq!(toks("--x\n"), vec![Tok::Eof]);
    }
}
