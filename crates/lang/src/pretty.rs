//! Pretty-printer: renders ASTs back to surface syntax.
//!
//! Used by the Figure 1 experiment binary and by round-trip tests
//! (`parse ∘ print ∘ parse = parse`).

use crate::ast::{BinOp, Block, Expr, SendExpr, Stmt, Target};
use crate::parser::{ClassSource, Program};
use std::fmt::Write as _;

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for (i, c) in p.classes.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        class_to_string_into(&mut out, c);
    }
    out
}

/// Renders one class declaration.
pub fn class_to_string(c: &ClassSource) -> String {
    let mut out = String::new();
    class_to_string_into(&mut out, c);
    out
}

fn class_to_string_into(out: &mut String, c: &ClassSource) {
    write!(out, "class {}", c.name).unwrap();
    if !c.parents.is_empty() {
        write!(out, " inherits {}", c.parents.join(", ")).unwrap();
    }
    out.push_str(" {\n");
    if !c.fields.is_empty() {
        out.push_str("  fields {\n");
        for f in &c.fields {
            writeln!(out, "    {}: {};", f.name, f.ty_name).unwrap();
        }
        out.push_str("  }\n");
    }
    for m in &c.methods {
        write!(out, "  method {}", m.name).unwrap();
        if !m.params.is_empty() {
            write!(out, "({})", m.params.join(", ")).unwrap();
        }
        out.push_str(" is");
        if m.redefined {
            out.push_str(" redefined as");
        }
        out.push('\n');
        block_into(out, &m.body, 2);
        out.push_str("  end\n");
    }
    out.push_str("}\n");
}

/// Renders a block at top level (no indentation).
pub fn block_to_string(b: &Block) -> String {
    let mut out = String::new();
    block_into(&mut out, b, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn block_into(out: &mut String, b: &Block, level: usize) {
    if b.is_empty() {
        indent(out, level + 1);
        out.push_str("skip\n");
        return;
    }
    let n = b.0.len();
    for (i, s) in b.0.iter().enumerate() {
        stmt_into(out, s, level + 1, i + 1 == n);
    }
}

fn stmt_into(out: &mut String, s: &Stmt, level: usize, last: bool) {
    indent(out, level);
    match s {
        Stmt::Skip => out.push_str("skip"),
        Stmt::Assign { name, expr } => {
            write!(out, "{name} := {}", expr_to_string(expr)).unwrap();
        }
        Stmt::VarDecl { name, expr } => {
            write!(out, "var {name} := {}", expr_to_string(expr)).unwrap();
        }
        Stmt::Send(send) => send_into(out, send),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            writeln!(out, "if {} then", expr_to_string(cond)).unwrap();
            block_into(out, then_blk, level);
            if let Some(e) = else_blk {
                indent(out, level);
                out.push_str("else\n");
                block_into(out, e, level);
            }
            indent(out, level);
            out.push_str("end");
        }
        Stmt::While { cond, body } => {
            writeln!(out, "while {} do", expr_to_string(cond)).unwrap();
            block_into(out, body, level);
            indent(out, level);
            out.push_str("end");
        }
        Stmt::Return(None) => out.push_str("return"),
        Stmt::Return(Some(e)) => {
            write!(out, "return {}", expr_to_string(e)).unwrap();
        }
    }
    if !last {
        out.push(';');
    }
    out.push('\n');
}

fn send_into(out: &mut String, s: &SendExpr) {
    out.push_str("send ");
    if let Some(p) = &s.prefix {
        write!(out, "{p}.").unwrap();
    }
    out.push_str(&s.method);
    if !s.args.is_empty() {
        let args: Vec<String> = s.args.iter().map(expr_to_string).collect();
        write!(out, "({})", args.join(", ")).unwrap();
    }
    match &s.target {
        Target::SelfRef => out.push_str(" to self"),
        Target::Field(f) => write!(out, " to {f}").unwrap(),
    }
}

/// Renders an expression (fully parenthesized where precedence demands).
pub fn expr_to_string(e: &Expr) -> String {
    let mut out = String::new();
    expr_into(&mut out, e, 0);
    out
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
    }
}

fn expr_into(out: &mut String, e: &Expr, min_prec: u8) {
    match e {
        Expr::Int(v) => write!(out, "{v}").unwrap(),
        Expr::Float(bits) => {
            let v = Expr::float_value(*bits);
            if v.fract() == 0.0 && v.is_finite() {
                write!(out, "{v:.1}").unwrap();
            } else {
                write!(out, "{v}").unwrap();
            }
        }
        Expr::Str(s) => write!(out, "{s:?}").unwrap(),
        Expr::Bool(b) => write!(out, "{b}").unwrap(),
        Expr::Nil => out.push_str("nil"),
        Expr::SelfRef => out.push_str("self"),
        Expr::Name(n) => out.push_str(n),
        Expr::Call { func, args } => {
            let rendered: Vec<String> = args.iter().map(expr_to_string).collect();
            write!(out, "{func}({})", rendered.join(", ")).unwrap();
        }
        Expr::Unary { op, expr } => {
            write!(out, "{op}").unwrap();
            // Unary binds tighter than any binary.
            expr_into(out, expr, 6);
        }
        Expr::Binary { op, lhs, rhs } => {
            let p = prec(*op);
            let need = p < min_prec;
            if need {
                out.push('(');
            }
            expr_into(out, lhs, p);
            write!(out, " {op} ").unwrap();
            // Left-associative: right child needs strictly higher prec.
            expr_into(out, rhs, p + 1);
            if need {
                out.push(')');
            }
        }
        Expr::Send(send) => {
            out.push('(');
            send_into(out, send);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_body, parse_program, FIGURE1_SOURCE};

    #[test]
    fn figure1_round_trips() {
        let p1 = parse_program(FIGURE1_SOURCE).unwrap();
        let rendered = program_to_string(&p1);
        let p2 = parse_program(&rendered).unwrap();
        assert_eq!(p1, p2, "print ∘ parse must be a fixpoint:\n{rendered}");
    }

    #[test]
    fn precedence_preserved() {
        for src in [
            "x := (1 + 2) * 3",
            "x := 1 + 2 * 3",
            "x := -(1 + 2)",
            "x := a or b and c",
            "x := (a or b) and c",
            "x := 1 - (2 - 3)",
            "x := 1 - 2 - 3",
            "y := not (a and b)",
        ] {
            let b1 = parse_body(src).unwrap();
            let out = block_to_string(&b1);
            let b2 = parse_body(&out).unwrap();
            assert_eq!(b1, b2, "round-trip failed for `{src}` → `{out}`");
        }
    }

    #[test]
    fn sends_and_control_round_trip() {
        let src = "send c1.m2(p1) to self; if x > 0 then send m to f else skip end; \
                   while b do var t := (send get to f); b := t end; return 4.0";
        let b1 = parse_body(src).unwrap();
        let out = block_to_string(&b1);
        let b2 = parse_body(&out).unwrap();
        assert_eq!(b1, b2, "rendered:\n{out}");
    }

    #[test]
    fn empty_body_prints_skip() {
        let rendered = block_to_string(&Block::empty());
        assert!(rendered.contains("skip"));
        parse_body(&rendered).unwrap();
    }

    #[test]
    fn string_literals_escaped() {
        let b1 = parse_body(r#"x := "a\"b\n""#).unwrap();
        let out = block_to_string(&b1);
        let b2 = parse_body(&out).unwrap();
        assert_eq!(b1, b2);
    }
}
