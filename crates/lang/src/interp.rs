//! Tree-walking interpreter for method bodies.
//!
//! All data access goes through the [`DataAccess`] trait, which is the
//! seam every concurrency-control scheme plugs into:
//!
//! * [`DataAccess::on_message`] fires when a *top* message is sent to an
//!   instance (from the application, or through a reference field). Under
//!   the paper's scheme this is the **only** point that acquires a lock —
//!   the transitive access vector covers everything below.
//! * [`DataAccess::on_self_message`] fires for every self-directed message
//!   (simple or prefixed). Per-message baselines (ORION-style read/write
//!   locking) acquire here too — which is precisely what produces the
//!   paper's problems P2 (repeated controls) and P3 (escalation).
//! * [`DataAccess::read_field`] / [`DataAccess::write_field`] fire on
//!   every field access; run-time field locking (Agrawal–El Abbadi)
//!   acquires here.
//!
//! Late binding follows §2.2 exactly: a self-directed message re-resolves
//! in the *receiver's* class, even when sent from an ancestor's method
//! body reached through a prefixed call.

use crate::ast::{BinOp, Block, Expr, SendExpr, Stmt, Target, UnOp};
use crate::builtins::Builtins;
use crate::error::ExecError;
use crate::parser::MethodBodies;
use finecc_model::{ClassId, FieldId, MethodId, Oid, Schema, Value};
use std::collections::HashMap;

/// The interpreter's window onto the database, and the hook surface for
/// concurrency control. See the module docs for when each hook fires.
pub trait DataAccess {
    /// The proper class of an instance.
    fn class_of(&mut self, oid: Oid) -> Result<ClassId, ExecError>;

    /// Reads one field of an instance.
    fn read_field(&mut self, oid: Oid, field: FieldId) -> Result<Value, ExecError>;

    /// Writes one field of an instance.
    fn write_field(&mut self, oid: Oid, field: FieldId, value: Value) -> Result<(), ExecError>;

    /// Hook: a top message `method` is about to run on `oid`.
    fn on_message(&mut self, oid: Oid, class: ClassId, method: MethodId) -> Result<(), ExecError> {
        let _ = (oid, class, method);
        Ok(())
    }

    /// Hook: a self-directed message (simple or prefixed) is about to run.
    fn on_self_message(
        &mut self,
        oid: Oid,
        class: ClassId,
        method: MethodId,
    ) -> Result<(), ExecError> {
        let _ = (oid, class, method);
        Ok(())
    }
}

/// Interpreter configuration + immutable program context.
pub struct Interpreter<'a> {
    schema: &'a Schema,
    bodies: &'a MethodBodies,
    builtins: &'a Builtins,
    /// Maximum message depth (self-sends and cross-instance sends).
    pub max_depth: usize,
    /// Maximum number of loop iterations + message sends per top call.
    pub max_fuel: u64,
}

struct RunState {
    depth: usize,
    fuel: u64,
}

impl RunState {
    fn burn(&mut self) -> Result<(), ExecError> {
        if self.fuel == 0 {
            return Err(ExecError::FuelExhausted);
        }
        self.fuel -= 1;
        Ok(())
    }
}

enum Flow {
    Normal(Value),
    Return(Value),
}

impl Flow {
    fn value(self) -> Value {
        match self {
            Flow::Normal(v) | Flow::Return(v) => v,
        }
    }
}

struct Frame<'f> {
    receiver: Oid,
    /// Class used for late binding of self-sends (the receiver's class).
    receiver_class: ClassId,
    /// Class whose fields the current body may name (the defining class).
    defining_class: ClassId,
    locals: HashMap<&'f str, Value>,
    /// Owned names introduced by `var` (they outlive the statement).
    owned_locals: HashMap<String, Value>,
}

impl Frame<'_> {
    fn get_local(&self, name: &str) -> Option<&Value> {
        self.owned_locals
            .get(name)
            .or_else(|| self.locals.get(name))
    }

    fn set_local(&mut self, name: &str, v: Value) -> bool {
        if let Some(slot) = self.owned_locals.get_mut(name) {
            *slot = v;
            true
        } else if let Some(slot) = self.locals.get_mut(name) {
            *slot = v;
            true
        } else {
            false
        }
    }
}

impl<'a> Interpreter<'a> {
    /// Creates an interpreter with default limits (depth 128, fuel 1M).
    pub fn new(schema: &'a Schema, bodies: &'a MethodBodies, builtins: &'a Builtins) -> Self {
        Interpreter {
            schema,
            bodies,
            builtins,
            max_depth: 128,
            max_fuel: 1_000_000,
        }
    }

    /// Sends the *top* message `method(args)` to `oid`: resolves late
    /// binding in the receiver's class, fires [`DataAccess::on_message`],
    /// runs the body, and returns its value (nil unless `return`).
    pub fn send(
        &self,
        da: &mut dyn DataAccess,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        let mut st = RunState {
            depth: 0,
            fuel: self.max_fuel,
        };
        self.send_top(da, &mut st, oid, method, args)
    }

    fn send_top(
        &self,
        da: &mut dyn DataAccess,
        st: &mut RunState,
        oid: Oid,
        method: &str,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        let class = da.class_of(oid)?;
        let mid = self.schema.resolve_method(class, method).ok_or_else(|| {
            ExecError::MessageNotUnderstood {
                class,
                method: method.to_string(),
            }
        })?;
        da.on_message(oid, class, mid)?;
        self.run_method(da, st, oid, class, mid, args)
    }

    fn run_method(
        &self,
        da: &mut dyn DataAccess,
        st: &mut RunState,
        receiver: Oid,
        receiver_class: ClassId,
        mid: MethodId,
        args: &[Value],
    ) -> Result<Value, ExecError> {
        if st.depth >= self.max_depth {
            return Err(ExecError::DepthExceeded(self.max_depth));
        }
        st.burn()?;
        let mi = self.schema.method(mid);
        if mi.sig.params.len() != args.len() {
            return Err(ExecError::ArityMismatch {
                method: mi.sig.name.clone(),
                expected: mi.sig.params.len(),
                got: args.len(),
            });
        }
        let mut frame = Frame {
            receiver,
            receiver_class,
            defining_class: mi.owner,
            locals: mi
                .sig
                .params
                .iter()
                .map(String::as_str)
                .zip(args.iter().cloned())
                .collect(),
            owned_locals: HashMap::new(),
        };
        st.depth += 1;
        let body = self.bodies.body(mid);
        let flow = self.exec_block(da, st, &mut frame, body);
        st.depth -= 1;
        Ok(flow?.value())
    }

    fn field_of(&self, frame: &Frame<'_>, name: &str) -> Option<FieldId> {
        self.schema.resolve_field(frame.defining_class, name)
    }

    fn exec_block(
        &self,
        da: &mut dyn DataAccess,
        st: &mut RunState,
        frame: &mut Frame<'_>,
        block: &Block,
    ) -> Result<Flow, ExecError> {
        for stmt in &block.0 {
            if let Flow::Return(v) = self.exec_stmt(da, st, frame, stmt)? {
                return Ok(Flow::Return(v));
            }
        }
        Ok(Flow::Normal(Value::Nil))
    }

    fn exec_stmt(
        &self,
        da: &mut dyn DataAccess,
        st: &mut RunState,
        frame: &mut Frame<'_>,
        stmt: &Stmt,
    ) -> Result<Flow, ExecError> {
        match stmt {
            Stmt::Skip => Ok(Flow::Normal(Value::Nil)),
            Stmt::Assign { name, expr } => {
                let v = self.eval(da, st, frame, expr)?;
                if frame.get_local(name).is_some() {
                    frame.set_local(name, v);
                    return Ok(Flow::Normal(Value::Nil));
                }
                match self.field_of(frame, name) {
                    Some(f) => {
                        da.write_field(frame.receiver, f, v)?;
                        Ok(Flow::Normal(Value::Nil))
                    }
                    None => Err(ExecError::UnknownName(name.clone())),
                }
            }
            Stmt::VarDecl { name, expr } => {
                let v = self.eval(da, st, frame, expr)?;
                frame.owned_locals.insert(name.clone(), v);
                Ok(Flow::Normal(Value::Nil))
            }
            Stmt::Send(send) => {
                self.eval_send(da, st, frame, send)?;
                Ok(Flow::Normal(Value::Nil))
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                let c = self.eval(da, st, frame, cond)?;
                if c.truthy() {
                    self.exec_block(da, st, frame, then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(da, st, frame, e)
                } else {
                    Ok(Flow::Normal(Value::Nil))
                }
            }
            Stmt::While { cond, body } => {
                loop {
                    st.burn()?;
                    let c = self.eval(da, st, frame, cond)?;
                    if !c.truthy() {
                        break;
                    }
                    if let Flow::Return(v) = self.exec_block(da, st, frame, body)? {
                        return Ok(Flow::Return(v));
                    }
                }
                Ok(Flow::Normal(Value::Nil))
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(da, st, frame, e)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
        }
    }

    fn eval_send(
        &self,
        da: &mut dyn DataAccess,
        st: &mut RunState,
        frame: &mut Frame<'_>,
        send: &SendExpr,
    ) -> Result<Value, ExecError> {
        let mut args = Vec::with_capacity(send.args.len());
        for a in &send.args {
            args.push(self.eval(da, st, frame, a)?);
        }
        match (&send.prefix, &send.target) {
            // Prefixed self-send: resolve in the named ancestor; late
            // binding of nested self-sends still uses the receiver class.
            (Some(prefix), Target::SelfRef) => {
                let pid = self
                    .schema
                    .class_by_name(prefix)
                    .ok_or_else(|| ExecError::UnknownName(prefix.clone()))?;
                let mid = self
                    .schema
                    .resolve_method(pid, &send.method)
                    .ok_or_else(|| ExecError::MessageNotUnderstood {
                        class: pid,
                        method: send.method.clone(),
                    })?;
                da.on_self_message(frame.receiver, frame.receiver_class, mid)?;
                self.run_method(da, st, frame.receiver, frame.receiver_class, mid, &args)
            }
            // Simple self-send: late binding in the receiver's class.
            (None, Target::SelfRef) => {
                let mid = self
                    .schema
                    .resolve_method(frame.receiver_class, &send.method)
                    .ok_or_else(|| ExecError::MessageNotUnderstood {
                        class: frame.receiver_class,
                        method: send.method.clone(),
                    })?;
                da.on_self_message(frame.receiver, frame.receiver_class, mid)?;
                self.run_method(da, st, frame.receiver, frame.receiver_class, mid, &args)
            }
            // Send through a reference field: a *top* message on the
            // referenced instance.
            (None, Target::Field(fname)) => {
                let f = self
                    .field_of(frame, fname)
                    .ok_or_else(|| ExecError::UnknownName(fname.clone()))?;
                let v = da.read_field(frame.receiver, f)?;
                let oid = match v {
                    Value::Ref(o) => o,
                    Value::Nil => {
                        return Err(ExecError::NilReceiver {
                            method: send.method.clone(),
                        })
                    }
                    _ => {
                        return Err(ExecError::NotAReference {
                            method: send.method.clone(),
                        })
                    }
                };
                self.send_top(da, st, oid, &send.method, &args)
            }
            (Some(_), Target::Field(_)) => Err(ExecError::TypeError(
                "prefixed send must target self".into(),
            )),
        }
    }

    fn eval(
        &self,
        da: &mut dyn DataAccess,
        st: &mut RunState,
        frame: &mut Frame<'_>,
        expr: &Expr,
    ) -> Result<Value, ExecError> {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(bits) => Ok(Value::Float(Expr::float_value(*bits))),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Nil => Ok(Value::Nil),
            Expr::SelfRef => Ok(Value::Ref(frame.receiver)),
            Expr::Name(name) => {
                if let Some(v) = frame.get_local(name) {
                    return Ok(v.clone());
                }
                match self.field_of(frame, name) {
                    Some(f) => da.read_field(frame.receiver, f),
                    None => Err(ExecError::UnknownName(name.clone())),
                }
            }
            Expr::Call { func, args } => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(da, st, frame, a)?);
                }
                self.builtins.call(func, &vs)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(da, st, frame, expr)?;
                match op {
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(ExecError::TypeError(format!(
                            "cannot negate a {}",
                            other.type_name()
                        ))),
                    },
                }
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(da, st, frame, *op, lhs, rhs),
            Expr::Send(send) => self.eval_send(da, st, frame, send),
        }
    }

    fn eval_binary(
        &self,
        da: &mut dyn DataAccess,
        st: &mut RunState,
        frame: &mut Frame<'_>,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<Value, ExecError> {
        // Short-circuit logicals first.
        match op {
            BinOp::And => {
                let l = self.eval(da, st, frame, lhs)?;
                if !l.truthy() {
                    return Ok(Value::Bool(false));
                }
                let r = self.eval(da, st, frame, rhs)?;
                return Ok(Value::Bool(r.truthy()));
            }
            BinOp::Or => {
                let l = self.eval(da, st, frame, lhs)?;
                if l.truthy() {
                    return Ok(Value::Bool(true));
                }
                let r = self.eval(da, st, frame, rhs)?;
                return Ok(Value::Bool(r.truthy()));
            }
            _ => {}
        }
        let l = self.eval(da, st, frame, lhs)?;
        let r = self.eval(da, st, frame, rhs)?;
        binary_value(op, &l, &r)
    }
}

/// Applies a non-logical binary operator to two values.
///
/// Numeric rules: ints stay ints (wrapping; `/` and `%` by zero yield 0 so
/// generated workloads are total); mixing int and float coerces to float.
/// `+` concatenates strings. Equality across different types is `false`;
/// ordering across different types is a type error.
pub fn binary_value(op: BinOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    use BinOp::*;
    use Value::*;
    let type_err = || {
        Err(ExecError::TypeError(format!(
            "`{op}` not defined on {} and {}",
            l.type_name(),
            r.type_name()
        )))
    };
    match op {
        Add => match (l, r) {
            (Int(a), Int(b)) => Ok(Int(a.wrapping_add(*b))),
            (Float(a), Float(b)) => Ok(Float(a + b)),
            (Int(a), Float(b)) => Ok(Float(*a as f64 + b)),
            (Float(a), Int(b)) => Ok(Float(a + *b as f64)),
            (Str(a), Str(b)) => Ok(Value::str(format!("{a}{b}"))),
            _ => type_err(),
        },
        Sub | Mul | Div | Mod => {
            let f = |a: i64, b: i64| match op {
                Sub => a.wrapping_sub(b),
                Mul => a.wrapping_mul(b),
                Div => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                Mod => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_rem(b)
                    }
                }
                _ => unreachable!(),
            };
            let g = |a: f64, b: f64| match op {
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        0.0
                    } else {
                        a / b
                    }
                }
                Mod => {
                    if b == 0.0 {
                        0.0
                    } else {
                        a % b
                    }
                }
                _ => unreachable!(),
            };
            match (l, r) {
                (Int(a), Int(b)) => Ok(Int(f(*a, *b))),
                (Float(a), Float(b)) => Ok(Float(g(*a, *b))),
                (Int(a), Float(b)) => Ok(Float(g(*a as f64, *b))),
                (Float(a), Int(b)) => Ok(Float(g(*a, *b as f64))),
                _ => type_err(),
            }
        }
        Eq | Ne => {
            let eq = match (l, r) {
                (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b,
                (a, b) => a == b,
            };
            Ok(Bool(if op == Eq { eq } else { !eq }))
        }
        Lt | Le | Gt | Ge => {
            let ord = match (l, r) {
                (Int(a), Int(b)) => a.partial_cmp(b),
                (Float(a), Float(b)) => a.partial_cmp(b),
                (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
                (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
                (Str(a), Str(b)) => Some(a.cmp(b)),
                (Bool(a), Bool(b)) => Some(a.cmp(b)),
                _ => return type_err(),
            };
            let Some(ord) = ord else {
                // NaN comparisons are false.
                return Ok(Bool(false));
            };
            Ok(Bool(match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        And | Or => unreachable!("handled by eval_binary"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{build_schema, FIGURE1_SOURCE};
    use finecc_model::Instance;

    /// A plain in-memory store with call-tracing, for interpreter tests.
    struct TraceStore {
        schema: Schema,
        heap: HashMap<Oid, Instance>,
        msgs: Vec<String>,
        self_msgs: Vec<String>,
        reads: usize,
        writes: usize,
    }

    impl TraceStore {
        fn new(schema: Schema) -> Self {
            TraceStore {
                schema,
                heap: HashMap::new(),
                msgs: Vec::new(),
                self_msgs: Vec::new(),
                reads: 0,
                writes: 0,
            }
        }

        fn create(&mut self, class: &str, oid: u64) -> Oid {
            let cid = self.schema.class_by_name(class).unwrap();
            let inst = Instance::new(&self.schema, cid);
            self.heap.insert(Oid(oid), inst);
            Oid(oid)
        }

        fn get_field(&self, oid: Oid, class: &str, name: &str) -> Value {
            let cid = self.schema.class_by_name(class).unwrap();
            let f = self.schema.resolve_field(cid, name).unwrap();
            self.heap[&oid].get(&self.schema, f).unwrap().clone()
        }

        fn set_field(&mut self, oid: Oid, class: &str, name: &str, v: Value) {
            let cid = self.schema.class_by_name(class).unwrap();
            let f = self.schema.resolve_field(cid, name).unwrap();
            let schema = self.schema.clone();
            self.heap.get_mut(&oid).unwrap().set(&schema, f, v).unwrap();
        }
    }

    impl DataAccess for TraceStore {
        fn class_of(&mut self, oid: Oid) -> Result<ClassId, ExecError> {
            self.heap
                .get(&oid)
                .map(|i| i.class)
                .ok_or(ExecError::UnknownOid(oid))
        }
        fn read_field(&mut self, oid: Oid, field: FieldId) -> Result<Value, ExecError> {
            self.reads += 1;
            let inst = self.heap.get(&oid).ok_or(ExecError::UnknownOid(oid))?;
            inst.get(&self.schema, field)
                .cloned()
                .ok_or(ExecError::FieldNotVisible { oid, field })
        }
        fn write_field(&mut self, oid: Oid, field: FieldId, value: Value) -> Result<(), ExecError> {
            self.writes += 1;
            let schema = self.schema.clone();
            let inst = self.heap.get_mut(&oid).ok_or(ExecError::UnknownOid(oid))?;
            inst.set(&schema, field, value)
                .map(drop)
                .ok_or(ExecError::FieldNotVisible { oid, field })
        }
        fn on_message(&mut self, _o: Oid, _c: ClassId, m: MethodId) -> Result<(), ExecError> {
            self.msgs.push(format!("{m}"));
            Ok(())
        }
        fn on_self_message(&mut self, _o: Oid, _c: ClassId, m: MethodId) -> Result<(), ExecError> {
            self.self_msgs.push(format!("{m}"));
            Ok(())
        }
    }

    fn fig1() -> (Schema, MethodBodies, Builtins) {
        let (s, b) = build_schema(FIGURE1_SOURCE).unwrap();
        (s, b, Builtins::standard())
    }

    #[test]
    fn m2_on_c1_instance_writes_f1() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o = store.create("c1", 1);
        store.set_field(o, "c1", "f1", Value::Int(10));
        store.set_field(o, "c1", "f2", Value::Bool(true));
        let interp = Interpreter::new(&s, &b, &bi);
        interp.send(&mut store, o, "m2", &[Value::Int(5)]).unwrap();
        // expr(f1, f2, p1) = 10 + 1 + 5 = 16
        assert_eq!(store.get_field(o, "c1", "f1"), Value::Int(16));
    }

    #[test]
    fn late_binding_selects_override() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o = store.create("c2", 1);
        store.set_field(o, "c2", "f5", Value::Int(7));
        let interp = Interpreter::new(&s, &b, &bi);
        // m1 → self m2 (c2's override!) → prefixed c1.m2 writes f1;
        // override body writes f4 := expr(f5, p1) = 7 + 3 = 10.
        interp.send(&mut store, o, "m1", &[Value::Int(3)]).unwrap();
        assert_eq!(store.get_field(o, "c2", "f4"), Value::Int(10));
        // c1.m2 wrote f1 := expr(f1, f2, p1) = 0 + 0 + 3 = 3.
        assert_eq!(store.get_field(o, "c2", "f1"), Value::Int(3));
    }

    #[test]
    fn top_vs_self_message_hooks() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o = store.create("c2", 1);
        let interp = Interpreter::new(&s, &b, &bi);
        interp.send(&mut store, o, "m1", &[Value::Int(1)]).unwrap();
        // Exactly one top message (m1); self messages: m2(c2), c1.m2, m3.
        assert_eq!(store.msgs.len(), 1);
        assert_eq!(store.self_msgs.len(), 3);
    }

    #[test]
    fn send_through_field_is_top_message() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o1 = store.create("c1", 1);
        let o3 = store.create("c3", 2);
        store.set_field(o1, "c1", "f2", Value::Bool(true));
        store.set_field(o1, "c1", "f3", Value::Ref(o3));
        let interp = Interpreter::new(&s, &b, &bi);
        interp.send(&mut store, o1, "m3", &[]).unwrap();
        // Two top messages: m3 on o1 and m on o3.
        assert_eq!(store.msgs.len(), 2);
        assert_eq!(store.get_field(o3, "c3", "g1"), Value::Int(1));
    }

    #[test]
    fn conditional_external_send_skipped() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o1 = store.create("c1", 1);
        let interp = Interpreter::new(&s, &b, &bi);
        // f2 is false: no send through f3, no nil-receiver error.
        interp.send(&mut store, o1, "m3", &[]).unwrap();
        assert_eq!(store.msgs.len(), 1);
    }

    #[test]
    fn nil_receiver_error() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o1 = store.create("c1", 1);
        store.set_field(o1, "c1", "f2", Value::Bool(true));
        let interp = Interpreter::new(&s, &b, &bi);
        assert!(matches!(
            interp.send(&mut store, o1, "m3", &[]),
            Err(ExecError::NilReceiver { .. })
        ));
    }

    #[test]
    fn message_not_understood() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o1 = store.create("c1", 1);
        let interp = Interpreter::new(&s, &b, &bi);
        assert!(matches!(
            interp.send(&mut store, o1, "m4", &[Value::Int(1), Value::Int(2)]),
            Err(ExecError::MessageNotUnderstood { .. })
        ));
    }

    #[test]
    fn arity_checked() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o1 = store.create("c1", 1);
        let interp = Interpreter::new(&s, &b, &bi);
        assert!(matches!(
            interp.send(&mut store, o1, "m2", &[]),
            Err(ExecError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn m4_branches_on_cond() {
        let (s, b, bi) = fig1();
        let mut store = TraceStore::new(s.clone());
        let o = store.create("c2", 1);
        let interp = Interpreter::new(&s, &b, &bi);
        // cond(f5=0, p1=-1) = false → f6 untouched.
        interp
            .send(&mut store, o, "m4", &[Value::Int(-1), Value::Int(2)])
            .unwrap();
        assert_eq!(store.get_field(o, "c2", "f6"), Value::str(""));
        // cond(0, 5) = true → f6 := expr("", p2).
        interp
            .send(&mut store, o, "m4", &[Value::Int(5), Value::Int(2)])
            .unwrap();
        assert_eq!(store.get_field(o, "c2", "f6"), Value::str("|2"));
    }

    #[test]
    fn recursion_depth_limited() {
        let src = "class a { method loop is send loop to self end }";
        let (s, b) = build_schema(src).unwrap();
        let bi = Builtins::standard();
        let mut store = TraceStore::new(s.clone());
        let o = store.create("a", 1);
        let mut interp = Interpreter::new(&s, &b, &bi);
        interp.max_depth = 16;
        assert!(matches!(
            interp.send(&mut store, o, "loop", &[]),
            Err(ExecError::DepthExceeded(16))
        ));
    }

    #[test]
    fn while_loop_and_fuel() {
        let src = r#"
class a {
  fields { n: integer; acc: integer; }
  method sum is
    while n > 0 do
      acc := acc + n;
      n := n - 1
    end;
    return acc
  end
  method forever is
    while true do skip end
  end
}
"#;
        let (s, b) = build_schema(src).unwrap();
        let bi = Builtins::standard();
        let mut store = TraceStore::new(s.clone());
        let o = store.create("a", 1);
        store.set_field(o, "a", "n", Value::Int(5));
        let mut interp = Interpreter::new(&s, &b, &bi);
        let v = interp.send(&mut store, o, "sum", &[]).unwrap();
        assert_eq!(v, Value::Int(15));
        interp.max_fuel = 1000;
        assert!(matches!(
            interp.send(&mut store, o, "forever", &[]),
            Err(ExecError::FuelExhausted)
        ));
    }

    #[test]
    fn return_value_via_expression_send() {
        let src = r#"
class cell { fields { v: integer; } method get is return v end }
class user {
  fields { c: cell; out: integer; }
  method pull is out := (send get to c) + 1 end
}
"#;
        let (s, b) = build_schema(src).unwrap();
        let bi = Builtins::standard();
        let mut store = TraceStore::new(s.clone());
        let cell = store.create("cell", 1);
        let user = store.create("user", 2);
        store.set_field(cell, "cell", "v", Value::Int(41));
        store.set_field(user, "user", "c", Value::Ref(cell));
        let interp = Interpreter::new(&s, &b, &bi);
        interp.send(&mut store, user, "pull", &[]).unwrap();
        assert_eq!(store.get_field(user, "user", "out"), Value::Int(42));
    }

    #[test]
    fn binary_semantics() {
        use BinOp::*;
        let i = Value::Int;
        assert_eq!(binary_value(Add, &i(2), &i(3)), Ok(i(5)));
        assert_eq!(binary_value(Div, &i(7), &i(0)), Ok(i(0)));
        assert_eq!(binary_value(Mod, &i(7), &i(0)), Ok(i(0)));
        assert_eq!(
            binary_value(Add, &Value::str("a"), &Value::str("b")),
            Ok(Value::str("ab"))
        );
        assert_eq!(
            binary_value(Eq, &i(1), &Value::str("1")),
            Ok(Value::Bool(false))
        );
        assert_eq!(
            binary_value(Ne, &i(1), &Value::str("1")),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            binary_value(Lt, &i(1), &Value::Float(1.5)),
            Ok(Value::Bool(true))
        );
        assert!(binary_value(Lt, &i(1), &Value::str("x")).is_err());
        assert_eq!(
            binary_value(Add, &Value::Float(0.5), &i(1)),
            Ok(Value::Float(1.5))
        );
    }

    #[test]
    fn self_expression_is_receiver_ref() {
        let src = r#"
class node {
  fields { next: node; }
  method tie is next := self end
}
"#;
        let (s, b) = build_schema(src).unwrap();
        let bi = Builtins::standard();
        let mut store = TraceStore::new(s.clone());
        let o = store.create("node", 5);
        let interp = Interpreter::new(&s, &b, &bi);
        interp.send(&mut store, o, "tie", &[]).unwrap();
        assert_eq!(store.get_field(o, "node", "next"), Value::Ref(o));
    }
}
