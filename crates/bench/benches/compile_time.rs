//! Criterion bench for experiment E3: compile-time cost of the full
//! pipeline (analysis → graphs → Tarjan/TAV → matrices) at three schema
//! sizes, plus the TAV stage alone. Linearity shows as the per-size
//! ratios tracking the size ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use finecc_sim::workload::{generate_source, SchemaGenConfig};
use std::hint::black_box;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for classes in [10usize, 40, 160] {
        let cfg = SchemaGenConfig {
            classes,
            method_pool: 12,
            seed: 1,
            multi_parent_prob: 0.0,
            ..SchemaGenConfig::default()
        };
        let src = generate_source(&cfg);
        let (schema, bodies) = finecc_lang::build_schema(&src).expect("builds");

        group.bench_with_input(
            BenchmarkId::new("full_pipeline", classes),
            &classes,
            |b, _| {
                b.iter(|| {
                    let compiled =
                        finecc_core::compile(black_box(&schema), black_box(&bodies)).unwrap();
                    black_box(compiled.total_modes())
                })
            },
        );

        // TAV stage in isolation (Defs 9–10 on pre-extracted facts).
        let extraction = finecc_core::extract(&schema, &bodies).unwrap();
        group.bench_with_input(BenchmarkId::new("tav_stage", classes), &classes, |b, _| {
            b.iter(|| {
                let compiled = finecc_core::compiler::compile_with_extraction(
                    black_box(&schema),
                    extraction.clone(),
                )
                .unwrap();
                black_box(compiled.total_modes())
            })
        });

        group.bench_with_input(BenchmarkId::new("parse_only", classes), &classes, |b, _| {
            b.iter(|| {
                black_box(
                    finecc_lang::build_schema(black_box(&src))
                        .unwrap()
                        .0
                        .class_count(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
