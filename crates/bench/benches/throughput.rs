//! Criterion bench for experiment E7 — committed-transaction throughput
//! of a mixed generated workload under each scheme (4 worker threads,
//! hot-spot skew). The shape claim: tav ≥ rw on contended workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use finecc_runtime::SchemeKind;
use finecc_sim::workload::{
    generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
};
use finecc_sim::{run_concurrent, ExecConfig};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let txns = 300usize;
    let mut group = c.benchmark_group("workload_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(txns as u64));

    for kind in SchemeKind::ALL {
        group.bench_with_input(BenchmarkId::new("mixed", kind.name()), &kind, |b, &kind| {
            b.iter_with_setup(
                || {
                    let env = generate_env(&SchemaGenConfig {
                        classes: 8,
                        seed: 21,
                        write_prob: 0.6,
                        ..SchemaGenConfig::default()
                    });
                    populate_random(&env, 4);
                    let wl = generate_workload(
                        &env,
                        &WorkloadConfig {
                            txns,
                            hot_frac: 0.5,
                            hot_set: 4,
                            seed: 9,
                            ..WorkloadConfig::default()
                        },
                    );
                    (kind.build(env), wl)
                },
                |(scheme, wl)| {
                    let r = run_concurrent(
                        scheme.as_ref(),
                        &wl.ops,
                        ExecConfig {
                            threads: 4,
                            max_retries: 50,
                        },
                    );
                    assert_eq!(r.failed, 0);
                    black_box(r.committed)
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
