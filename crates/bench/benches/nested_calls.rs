//! Criterion bench for experiment E5 — end-to-end cost of one top
//! message whose execution self-sends through a chain of depth 8, under
//! each scheme (lock traffic included). The gap between `tav` and the
//! per-message/per-field baselines is the P2 overhead in wall-clock form.

use criterion::{criterion_group, criterion_main, Criterion};
use finecc_bench::{chain_schema, env_of};
use finecc_model::Value;
use finecc_runtime::SchemeKind;
use std::hint::black_box;

fn bench_nested(c: &mut Criterion) {
    let mut group = c.benchmark_group("nested_call_depth8");
    for kind in [
        SchemeKind::Tav,
        SchemeKind::Rw,
        SchemeKind::FieldLock,
        SchemeKind::Mvcc,
        SchemeKind::MvccSsi,
    ] {
        let env = env_of(&chain_schema(8));
        let chain = env.schema.class_by_name("chain").unwrap();
        let oid = env.db.create(chain);
        let scheme = kind.build(env);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut txn = scheme.begin();
                let v = scheme
                    .send(&mut txn, oid, "m0", black_box(&[Value::Int(1)]))
                    .unwrap();
                scheme.commit(txn).unwrap();
                black_box(v)
            })
        });
    }
    group.finish();

    // Baseline: the bare interpreter with no concurrency control at all,
    // to separate locking cost from execution cost.
    let mut group = c.benchmark_group("nested_call_depth8_nolock");
    let env = env_of(&chain_schema(8));
    let chain = env.schema.class_by_name("chain").unwrap();
    let oid = env.db.create(chain);
    struct Raw<'a>(&'a finecc_runtime::Env);
    impl finecc_lang::DataAccess for Raw<'_> {
        fn class_of(
            &mut self,
            oid: finecc_model::Oid,
        ) -> Result<finecc_model::ClassId, finecc_lang::ExecError> {
            self.0
                .db
                .class_of(oid)
                .map_err(finecc_runtime::Env::store_err)
        }
        fn read_field(
            &mut self,
            oid: finecc_model::Oid,
            f: finecc_model::FieldId,
        ) -> Result<Value, finecc_lang::ExecError> {
            self.0
                .db
                .read(oid, f)
                .map_err(finecc_runtime::Env::store_err)
        }
        fn write_field(
            &mut self,
            oid: finecc_model::Oid,
            f: finecc_model::FieldId,
            v: Value,
        ) -> Result<(), finecc_lang::ExecError> {
            self.0
                .db
                .write(oid, f, v)
                .map(drop)
                .map_err(finecc_runtime::Env::store_err)
        }
    }
    let builtins = finecc_lang::Builtins::standard();
    let interp = finecc_lang::Interpreter::new(&env.schema, &env.bodies, &builtins);
    group.bench_function("no_cc", |b| {
        b.iter(|| {
            let mut raw = Raw(&env);
            black_box(
                interp
                    .send(&mut raw, oid, "m0", black_box(&[Value::Int(1)]))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nested);
criterion_main!(benches);
