//! Criterion bench for experiment E4 — claim (2): "run-time checking of
//! commutativity is as efficient as for compatibility."
//!
//! Compares the per-check cost of (a) the generated commutativity-matrix
//! lookup, (b) the classical RW check, (c) raw access-vector
//! commutativity (what locking with vectors would cost, §5.1's argument
//! for translating to modes), and (d) a full lock-manager
//! acquire/release round trip under each source.

use criterion::{criterion_group, criterion_main, Criterion};
use finecc_lang::parser::FIGURE1_SOURCE;
use finecc_lock::{CommutSource, LockManager, LockMode, ModeSource, ResourceId, RwSource, READ};
use finecc_model::Oid;
use std::hint::black_box;
use std::sync::Arc;

fn bench_checks(c: &mut Criterion) {
    let (schema, bodies) = finecc_lang::build_schema(FIGURE1_SOURCE).unwrap();
    let compiled = Arc::new(finecc_core::compile(&schema, &bodies).unwrap());
    let c2 = schema.class_by_name("c2").unwrap();
    let table = compiled.class(c2).clone();
    let m1 = table.index_of("m1").unwrap();
    let m3 = table.index_of("m3").unwrap();
    let tav1 = table.tav(m1).clone();
    let tav3 = table.tav(m3).clone();

    let mut group = c.benchmark_group("check");
    group.bench_function("commut_matrix_lookup", |b| {
        b.iter(|| black_box(table.commute(black_box(m1), black_box(m3))))
    });
    group.bench_function("rw_table_lookup", |b| {
        let src = RwSource;
        let res = ResourceId::Instance(Oid(1), c2);
        b.iter(|| black_box(src.modes_compatible(&res, black_box(READ), black_box(READ))))
    });
    group.bench_function("access_vector_commutes", |b| {
        b.iter(|| black_box(tav1.commutes(black_box(&tav3))))
    });
    // A wide vector, to show the O(|fields|) cost §5.1 avoids.
    let wide_a: finecc_core::AccessVector = (0..64)
        .map(|i| (finecc_model::FieldId(i), finecc_core::AccessMode::Read))
        .collect();
    let wide_b: finecc_core::AccessVector = (0..64)
        .map(|i| (finecc_model::FieldId(i), finecc_core::AccessMode::Read))
        .collect();
    group.bench_function("access_vector_commutes_64_fields", |b| {
        b.iter(|| black_box(wide_a.commutes(black_box(&wide_b))))
    });
    group.finish();

    let mut group = c.benchmark_group("acquire_release");
    let lm_commut = LockManager::new(CommutSource::new(Arc::clone(&compiled)));
    let res = ResourceId::Instance(Oid(1), c2);
    group.bench_function("commut_manager", |b| {
        b.iter(|| {
            let t = lm_commut.begin();
            lm_commut.try_acquire(t, res, LockMode::plain(m3 as u16));
            lm_commut.release_all(t);
        })
    });
    let lm_rw = LockManager::new(RwSource);
    group.bench_function("rw_manager", |b| {
        b.iter(|| {
            let t = lm_rw.begin();
            lm_rw.try_acquire(t, res, LockMode::plain(READ));
            lm_rw.release_all(t);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_checks);
criterion_main!(benches);
