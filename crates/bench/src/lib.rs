//! # finecc-bench — experiment harness
//!
//! One binary per paper artifact/claim (see `src/bin/`, indexed in
//! EXPERIMENTS.md) and criterion micro-benchmarks (`benches/`). This
//! library holds the synthetic schemas the experiments share.

use finecc_obs::{Collector, LatencySummary, MetricsRegistry, Obs, ObsConfig};
use finecc_runtime::Env;
use finecc_sim::ExecReport;
use std::fmt::Write as _;
use std::sync::Arc;

/// Transaction count for an experiment cell: `FINECC_BENCH_TXNS`
/// overrides `default` (the CI bench-smoke job sets it low so the
/// scheme matrix runs in seconds).
pub fn txns_per_cell(default: usize) -> usize {
    std::env::var("FINECC_BENCH_TXNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Thread counts for the scaling sweeps: `FINECC_BENCH_THREADS` is a
/// comma-separated list (e.g. `1,2,4,8,16,32`) overriding `default`.
/// Unparseable entries are ignored; an empty result falls back to
/// `default`.
pub fn bench_threads(default: &[usize]) -> Vec<usize> {
    let parsed: Vec<usize> = std::env::var("FINECC_BENCH_THREADS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n > 0)
                .collect()
        })
        .unwrap_or_default();
    if parsed.is_empty() {
        default.to_vec()
    } else {
        parsed
    }
}

/// The observability handle an experiment binary installs on its
/// environments (`Env::with_obs`): histograms + contention attribution
/// on by default, a Chrome trace when `FINECC_TRACE=<path>` is set
/// (sampled by `FINECC_TRACE_SAMPLE`), everything off — every probe a
/// single branch — under `FINECC_OBS=off`.
pub fn obs_from_env() -> Arc<Obs> {
    Arc::new(Obs::new(ObsConfig::from_env()))
}

/// Exports the process-wide trace if one was configured, reporting the
/// path on stdout (experiments call this once, at exit).
pub fn export_trace(obs: &Obs) {
    match obs.export_trace() {
        Ok(Some((path, n))) => println!("\nchrome trace ({n} events): {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("\ntrace export failed: {e}"),
    }
}

/// The uniform multi-version counter block every committed
/// `BENCH_*.json` row carries, so the four artifacts stay comparable:
/// refused-timestamp skips, watermark overflow waits, epoch-pin
/// retries, and reclaimed copy-on-write snapshots (all zero for the
/// lock schemes).
pub fn mvcc_counter_pairs(r: &ExecReport) -> [(&'static str, JsonVal); 4] {
    [
        ("ts_skips", JsonVal::from(r.ts_skips())),
        ("watermark_waits", JsonVal::from(r.watermark_waits())),
        ("read_pin_retries", JsonVal::from(r.read_pin_retries())),
        ("cow_reclaimed", JsonVal::from(r.cow_reclaimed())),
    ]
}

/// End-to-end transaction latency quantiles as JSON pairs
/// (microseconds; all zero when observability is disabled).
pub fn latency_pairs(lat: LatencySummary) -> [(&'static str, JsonVal); 5] {
    [
        ("lat_p50_us", JsonVal::from(LatencySummary::us(lat.p50))),
        ("lat_p90_us", JsonVal::from(LatencySummary::us(lat.p90))),
        ("lat_p99_us", JsonVal::from(LatencySummary::us(lat.p99))),
        ("lat_max_us", JsonVal::from(LatencySummary::us(lat.max))),
        ("lat_mean_us", JsonVal::from(LatencySummary::us(lat.mean))),
    ]
}

/// Registers a **frozen** metric source over a finished run's report:
/// run-level outcome counters (`finecc.run.*`) plus everything the
/// report carries — the observability phases (cumulative and windowed),
/// contention totals, decayed hot scores, lock-manager counters, and
/// the mvcc / WAL blocks when the scheme has them — under the same
/// dotted names the live sources use, so one Prometheus scrape of a
/// finished matrix reads exactly like a scrape of a live run. Frozen
/// sources are how per-cell labels work when the experiment rebuilds
/// its scheme for every cell: the report is `Copy`, the closure owns
/// it, and the cell's environment can be dropped.
pub fn register_report_metrics(reg: &MetricsRegistry, labels: &[(&str, &str)], r: &ExecReport) {
    let r = *r;
    reg.register_fn(labels, move |c: &mut Collector| {
        c.counter("finecc.run.committed", r.committed);
        c.counter("finecc.run.exhausted", r.exhausted);
        c.counter("finecc.run.failed", r.failed);
        c.counter("finecc.run.retries", r.retries);
        c.gauge("finecc.run.elapsed_ms", r.elapsed.as_secs_f64() * 1e3);
        c.gauge("finecc.run.txns_per_sec", r.throughput());
        r.obs.collect_metrics(c);
        r.lock.collect_metrics(c);
        if let Some(m) = &r.mvcc {
            m.collect_metrics(c);
        }
        if let Some(w) = &r.wal {
            w.collect_metrics(c);
        }
    });
}

/// A scalar in the machine-readable bench artifacts. The experiments
/// emit flat JSON by hand — the workspace's vendored `serde` stub has
/// no JSON backend, and the rows are small enough that a dependency
/// would be overkill.
#[derive(Clone, Debug)]
pub enum JsonVal {
    /// An unsigned counter.
    Int(u64),
    /// A measured rate or ratio, emitted with two decimals.
    Num(f64),
    /// A label (escaped on write).
    Str(String),
}

impl From<u64> for JsonVal {
    fn from(v: u64) -> JsonVal {
        JsonVal::Int(v)
    }
}

impl From<usize> for JsonVal {
    fn from(v: usize) -> JsonVal {
        JsonVal::Int(v as u64)
    }
}

impl From<f64> for JsonVal {
    fn from(v: f64) -> JsonVal {
        JsonVal::Num(v)
    }
}

impl From<&str> for JsonVal {
    fn from(v: &str) -> JsonVal {
        JsonVal::Str(v.to_string())
    }
}

impl From<String> for JsonVal {
    fn from(v: String) -> JsonVal {
        JsonVal::Str(v)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out
}

/// Renders one flat JSON object from `(key, value)` pairs, keys in the
/// given order.
pub fn json_object(pairs: &[(&str, JsonVal)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "\"{}\": ", json_escape(k)).unwrap();
        match v {
            JsonVal::Int(n) => write!(out, "{n}").unwrap(),
            JsonVal::Num(x) if x.is_finite() => write!(out, "{x:.2}").unwrap(),
            JsonVal::Num(_) => out.push_str("null"),
            JsonVal::Str(s) => write!(out, "\"{}\"", json_escape(s)).unwrap(),
        }
    }
    out.push('}');
    out
}

/// Writes a JSON array of pre-rendered object rows to
/// `$FINECC_BENCH_JSON_DIR/<file_name>` (directory defaults to the
/// **workspace root**, regardless of the invocation cwd, so the
/// committed `BENCH_*.json` artifacts always land in the same place;
/// created if missing) so the perf trajectory is tracked as a
/// machine-readable artifact across PRs. Returns the path written.
///
/// The write is **atomic** (temp file in the same directory, then
/// rename): a sweep that panics or is killed mid-write can never leave
/// a torn half-JSON behind in place of a committed `BENCH_*.json`
/// artifact — the old file survives intact until the new one is fully
/// on disk.
pub fn write_bench_json(file_name: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let mut body = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str("  ");
        body.push_str(row);
        body.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    body.push_str("]\n");
    write_artifact(file_name, &body)
}

/// The directory the bench artifacts land in: `$FINECC_BENCH_JSON_DIR`,
/// else the workspace root as recorded at compile time; a relocated
/// binary (different checkout/machine) falls back to the cwd rather
/// than resurrecting the build machine's path.
pub fn artifact_dir() -> String {
    std::env::var("FINECC_BENCH_JSON_DIR").unwrap_or_else(|_| {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        if std::path::Path::new(root).is_dir() {
            root.to_string()
        } else {
            ".".to_string()
        }
    })
}

/// Writes `contents` to `<artifact_dir()>/<file_name>` **atomically**
/// (temp file in the same directory, then rename — see
/// [`write_bench_json`]; this is its write path, shared so the
/// Prometheus `.prom` snapshots get the same no-torn-file guarantee as
/// the `BENCH_*.json` rows). Returns the path written.
pub fn write_artifact(file_name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = artifact_dir();
    std::fs::create_dir_all(&dir)?;
    let path = std::path::Path::new(&dir).join(file_name);
    // Same-directory temp file so the rename cannot cross filesystems.
    let tmp = std::path::Path::new(&dir).join(format!(".{file_name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, contents)?;
    match std::fs::rename(&tmp, &path) {
        Ok(()) => Ok(path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A self-call chain of configurable depth: `m0` calls `m1` calls …
/// `m{d-1}`, which finally writes a field. Used by the locking-overhead
/// experiment (E5): the paper's P2 is that per-message schemes pay one
/// control per link.
pub fn chain_schema(depth: usize) -> String {
    assert!(depth >= 1);
    let mut s = String::from("class chain {\n  fields { x: integer; y: integer; }\n");
    for i in 0..depth {
        let body = if i + 1 < depth {
            format!("send m{}(p1) to self", i + 1)
        } else {
            "x := x + p1".to_string()
        };
        // Every intermediate method also reads a field, so per-message RW
        // classification is Read until the last link (the escalation
        // pattern of §3).
        let read = if i + 1 < depth {
            "var t := y + 1;\n    "
        } else {
            ""
        };
        writeln!(s, "  method m{i}(p1) is\n    {read}{body}\n  end").unwrap();
    }
    s.push_str("}\n");
    s
}

/// `n` writer methods on one class, each touching its own field — the
/// pseudo-conflict workload (P4/E7): all pairs commute under TAVs, none
/// under RW.
pub fn disjoint_writers_schema(n: usize) -> String {
    let mut s = String::from("class wide {\n  fields {\n");
    for i in 0..n {
        writeln!(s, "    f{i}: integer;").unwrap();
    }
    s.push_str("  }\n");
    for i in 0..n {
        writeln!(s, "  method w{i}(p1) is\n    f{i} := f{i} + p1\n  end").unwrap();
    }
    s.push_str("}\n");
    s
}

/// The System R escalation pattern (P3/E6): `outer` reads a field (a
/// *reader* to a per-message monitor), then self-sends `bump`, a writer
/// on the same data. Two concurrent `outer`s on one instance both take
/// read locks and both then need write locks: a guaranteed deadlock
/// under per-message RW; the TAV scheme announces Write up front.
pub const ESCALATION_SCHEMA: &str = r#"
class hot {
  fields { n: integer; }
  method outer(p1) is
    var t := n + p1;
    send bump(t) to self
  end
  method bump(v) is
    n := n + 1
  end
}
"#;

/// A branch-conservatism schema (E8): `maybe` writes `g` only when the
/// argument is positive. The TAV must assume the write always happens;
/// run-time field locking only locks what the execution touches.
pub const BRANCHY_SCHEMA: &str = r#"
class branchy {
  fields { f: integer; g: integer; }
  method maybe(p1) is
    if p1 > 0 then
      g := g + 1
    else
      f := f + 0 - 0 + f * 0 + 0;
      skip
    end
  end
  method reader is
    return g
  end
}
"#;

/// Builds an [`Env`] from source, panicking with context on failure
/// (experiment fixtures are static).
pub fn env_of(source: &str) -> Env {
    Env::from_source(source).expect("experiment schema compiles")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_object_renders_and_escapes() {
        let row = json_object(&[
            ("scheme", JsonVal::from("mvcc")),
            ("threads", JsonVal::from(16usize)),
            ("txns_per_sec", JsonVal::from(1234.567)),
            ("label", JsonVal::from("a \"quoted\"\nname")),
        ]);
        assert_eq!(
            row,
            "{\"scheme\": \"mvcc\", \"threads\": 16, \"txns_per_sec\": 1234.57, \
             \"label\": \"a \\\"quoted\\\"\\nname\"}"
        );
    }

    #[test]
    fn write_bench_json_is_atomic_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("finecc-bench-json-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // The env-var override is per-test-process global; restrict the
        // write to an isolated dir via a direct path check instead.
        std::env::set_var("FINECC_BENCH_JSON_DIR", &dir);
        let path = write_bench_json("BENCH_test.json", &["{\"a\": 1}".to_string()]).unwrap();
        assert!(path.ends_with("BENCH_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("[\n") && body.ends_with("]\n"));
        // Rewriting replaces the file atomically; no temp file remains.
        write_bench_json("BENCH_test.json", &["{\"a\": 2}".to_string()]).unwrap();
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["BENCH_test.json"], "no temp residue: {names:?}");
        std::env::remove_var("FINECC_BENCH_JSON_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_threads_falls_back_to_default() {
        if std::env::var("FINECC_BENCH_THREADS").is_err() {
            assert_eq!(bench_threads(&[1, 2, 16]), vec![1, 2, 16]);
        }
    }

    #[test]
    fn chain_schema_compiles_at_depths() {
        for d in [1, 2, 8, 32] {
            let env = env_of(&chain_schema(d));
            let chain = env.schema.class_by_name("chain").unwrap();
            assert_eq!(env.schema.class(chain).methods.len(), d);
            // TAV of m0 covers the final write.
            let t = env.compiled.class(chain);
            let m0 = t.index_of("m0").unwrap();
            assert!(!t.tav(m0).is_read_only());
            if d > 1 {
                assert!(t.dav(m0).is_read_only(), "m0's own code only reads");
            }
        }
    }

    #[test]
    fn disjoint_writers_all_commute_under_tav() {
        let env = env_of(&disjoint_writers_schema(6));
        let wide = env.schema.class_by_name("wide").unwrap();
        let t = env.compiled.class(wide);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(t.commute(i, j), i != j, "w{i} vs w{j}");
            }
        }
    }

    #[test]
    fn escalation_schema_classifies_as_expected() {
        let env = env_of(ESCALATION_SCHEMA);
        let hot = env.schema.class_by_name("hot").unwrap();
        let t = env.compiled.class(hot);
        let outer = t.index_of("outer").unwrap();
        assert!(
            t.dav(outer).is_read_only(),
            "outer alone looks like a reader"
        );
        assert!(!t.tav(outer).is_read_only(), "its TAV announces the write");
    }

    #[test]
    fn branchy_schema_tav_is_conservative() {
        let env = env_of(BRANCHY_SCHEMA);
        let b = env.schema.class_by_name("branchy").unwrap();
        let t = env.compiled.class(b);
        let maybe = t.index_of("maybe").unwrap();
        let reader = t.index_of("reader").unwrap();
        // The TAV writes g although most executions don't.
        assert!(!t.commute(maybe, reader));
    }
}
