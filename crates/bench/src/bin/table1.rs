//! Experiment T1 — regenerates **Table 1** of the paper: the classical
//! compatibility relation on `{Null, Read, Write}`.

use finecc_core::mode::{table1_string, AccessMode};

fn main() {
    println!("Table 1: Classical compatibility relation");
    println!("{}", table1_string());
    // The derived order (paper: deduced from the relation by inclusion
    // of rows and columns).
    let order: Vec<String> = AccessMode::ALL.iter().map(|m| m.to_string()).collect();
    println!("derived order: {}", order.join(" < "));
}
