//! Experiment E3 — the compile-time cost of the whole pipeline
//! (Definitions 6–10 plus matrix generation) as schema size grows.
//!
//! Claim (§1 (1), §7): commutativity "is determined a priori and
//! automatically by the compiler, without measurable overhead", with a
//! *linear* TAV algorithm. Shape to observe: time per class roughly
//! constant as the class count doubles.

use finecc_sim::workload::{generate_source, SchemaGenConfig};
use std::time::Instant;

fn main() {
    println!("schema size sweep (methods/class 1-4, pool 12, seeded)\n");
    let mut rows = Vec::new();
    for classes in [10usize, 20, 40, 80, 160, 320, 640] {
        let cfg = SchemaGenConfig {
            classes,
            method_pool: 12,
            seed: 1,
            multi_parent_prob: 0.0,
            ..SchemaGenConfig::default()
        };
        let src = generate_source(&cfg);

        let t0 = Instant::now();
        let (schema, bodies) = finecc_lang::build_schema(&src).expect("generated schema builds");
        let parse_time = t0.elapsed();

        let t1 = Instant::now();
        let compiled = finecc_core::compile(&schema, &bodies).expect("compiles");
        let compile_time = t1.elapsed();

        let modes = compiled.total_modes();
        let verts: usize = compiled.graphs.iter().map(|g| g.vertex_count()).sum();
        let us_per_class = compile_time.as_micros() as f64 / classes as f64;
        rows.push(vec![
            classes.to_string(),
            schema.method_count().to_string(),
            modes.to_string(),
            verts.to_string(),
            format!("{:.2}ms", parse_time.as_secs_f64() * 1e3),
            format!("{:.2}ms", compile_time.as_secs_f64() * 1e3),
            format!("{us_per_class:.1}"),
        ]);
    }
    println!(
        "{}",
        finecc_sim::render_table(
            &[
                "classes",
                "defs",
                "modes",
                "graph verts",
                "parse",
                "compile (Defs 6-10 + matrices)",
                "µs/class",
            ],
            &rows
        )
    );
    println!("shape check: µs/class should stay roughly flat (linear algorithm).");

    // §7: "methods are expected to be regularly created, deleted, or
    // updated" — incremental recompilation of ONE changed body vs a full
    // recompile, at the largest size.
    let cfg = SchemaGenConfig {
        classes: 640,
        method_pool: 12,
        seed: 1,
        multi_parent_prob: 0.0,
        ..SchemaGenConfig::default()
    };
    let src = generate_source(&cfg);
    let (schema, bodies) = finecc_lang::build_schema(&src).expect("builds");
    let prev = finecc_core::compile(&schema, &bodies).expect("compiles");
    // Edit a definition in a *leaf* class (the common case: a root
    // method edit invalidates its whole domain; a leaf edit is local).
    let changed = schema
        .classes()
        .rev()
        .find_map(|c| c.own_methods.last().copied())
        .expect("has methods");

    let t0 = Instant::now();
    let full = finecc_core::compile(&schema, &bodies).expect("compiles");
    let full_time = t0.elapsed();
    let t1 = Instant::now();
    let (incr, report) =
        finecc_core::recompile(&schema, &bodies, &prev, &[changed]).expect("recompiles");
    let incr_time = t1.elapsed();
    assert_eq!(incr.total_modes(), full.total_modes());
    println!(
        "\nincremental recompile (640 classes, 1 body changed): {:.2}ms \
         (rebuilt {} classes, reused {}) vs full {:.2}ms — {:.0}x faster",
        incr_time.as_secs_f64() * 1e3,
        report.recompiled.len(),
        report.reused,
        full_time.as_secs_f64() * 1e3,
        full_time.as_secs_f64() / incr_time.as_secs_f64().max(1e-9)
    );
}
