//! Experiment F2 — **Figure 2** of the paper: the late-binding resolution
//! graph of class c2, as an edge list and as Graphviz DOT.

use finecc_lang::parser::FIGURE1_SOURCE;

fn main() {
    let (schema, bodies) = finecc_lang::build_schema(FIGURE1_SOURCE).expect("parse");
    let compiled = finecc_core::compile(&schema, &bodies).expect("compile");
    let c2 = schema.class_by_name("c2").unwrap();
    let g = compiled.graph(c2);

    println!("Figure 2: the late-binding resolution graph of class c2");
    println!(
        "vertices: {} (paper: 5)   edges: {} (paper: 3)",
        g.vertex_count(),
        g.edge_count()
    );
    println!("\nvertices (vertices are keyed by resolved definition site;");
    println!("(c2,m1)/(c2,m3) display as their defining sites (c1,m1)/(c1,m3)):");
    for v in 0..g.vertex_count() {
        println!("  {}", g.label(&schema, v));
    }
    println!("\nedges:");
    for (from, to) in g.edge_labels(&schema) {
        println!("  {from} -> {to}");
    }
    println!("\nDOT:\n{}", g.to_dot(&schema));

    // And, for contrast, c1's own graph (no override edge).
    let c1 = schema.class_by_name("c1").unwrap();
    println!("late-binding resolution graph of c1 (for contrast):");
    for (from, to) in compiled.graph(c1).edge_labels(&schema) {
        println!("  {from} -> {to}");
    }
}
