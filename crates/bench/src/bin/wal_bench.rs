//! Experiment E13 — group-commit throughput: what the durability
//! subsystem costs, and what batching buys back.
//!
//! N writer threads hammer single-field transactions through an
//! [`MvccHeap`] with a write-ahead log attached, sweeping:
//!
//! * **sync mode** — `wal` (async: commits ack after enqueue; the
//!   flusher writes batches in the background) vs `wal-sync` (commits
//!   ack only after the group fsync covers their record);
//! * **batch cap** — the flusher's `max_batch`: how many commits one
//!   write+fsync round may absorb. Cap 1 at `wal-sync` is the
//!   degenerate fsync-per-commit baseline every real WAL design is
//!   measured against;
//! * **writer threads** — 1..16 (`FINECC_BENCH_THREADS`), fields
//!   per-thread so the sweep measures the log pipeline, not
//!   first-updater-wins conflicts.
//!
//! Shape: at `wal-sync` the mean group-commit size grows with thread
//! count (concurrent committers share fsyncs) and throughput follows;
//! at `wal` the fsync column stays near zero and throughput tracks the
//! no-durability baseline. One cell additionally recovers its log
//! directory and asserts the recovered base store equals the live one
//! — the embedded acceptance check that what the sweep wrote is what a
//! crash would get back.
//!
//! Each cell carries a fresh enabled [`Obs`]: the commit-path and
//! group-commit ack-wait columns are histogram quantiles (p50/p99 in
//! microseconds), not means — at `wal-sync` the ack-wait tail is where
//! batching shows up, and a mean would hide it.
//!
//! A second experiment (`wal_truncation` rows in the JSON) measures
//! the log-maintenance pipeline: repeated checkpoint + truncation
//! cycles, asserting the log file compacts back after every cycle
//! (bounded growth) and checkpoint retention caps the `.ckpt` files,
//! then recovers the directory through a deliberately tiny reorder
//! window to show replay memory is O(window), not O(log).
//!
//! `FINECC_BENCH_TXNS` overrides the per-thread commit count (CI smoke
//! sets it low). Emits `BENCH_wal.json` (into
//! `FINECC_BENCH_JSON_DIR`, default the workspace root) like the other
//! committed artifacts.

use finecc_bench::{bench_threads, json_object, txns_per_cell, write_bench_json, JsonVal};
use finecc_model::{FieldId, FieldType, Oid, SchemaBuilder, TxnId, Value};
use finecc_mvcc::{
    recover_database_with_window, CommitPath, DurabilityLevel, IsolationLevel, MvccHeap, Wal,
    WalConfig,
};
use finecc_obs::{LatencySummary, Obs, ObsConfig, Phase};
use finecc_sim::render_table;
use finecc_store::Database;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hot objects the writers cycle over.
const HOT_OBJECTS: usize = 16;

struct Fixture {
    heap: Arc<MvccHeap>,
    oids: Vec<Oid>,
    fields: Vec<FieldId>,
    next_txn: AtomicU64,
    dir: PathBuf,
    /// Per-cell observability window: each fixture gets a fresh
    /// enabled [`Obs`] so commit-phase and ack-wait histograms cover
    /// exactly one sweep cell with no reset bookkeeping.
    obs: Arc<Obs>,
}

fn fixture(threads: usize, level: DurabilityLevel, max_batch: usize, tag: &str) -> Fixture {
    let mut b = SchemaBuilder::new();
    {
        let c = b.class("hot");
        for t in 0..threads {
            c.field(&format!("f{t}"), FieldType::Int);
        }
    }
    let schema = Arc::new(b.finish().unwrap());
    let class = schema.class_by_name("hot").unwrap();
    let fields: Vec<FieldId> = (0..threads)
        .map(|t| schema.resolve_field(class, &format!("f{t}")).unwrap())
        .collect();
    let db = Arc::new(Database::new(Arc::clone(&schema)));
    let oids: Vec<Oid> = (0..HOT_OBJECTS).map(|_| db.create(class)).collect();
    let dir = std::env::temp_dir().join(format!("finecc-wal-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let obs = Arc::new(Obs::new(ObsConfig::enabled()));
    let wal = Arc::new(
        Wal::open_with_obs(
            &dir,
            WalConfig {
                level,
                max_batch,
                ..WalConfig::default()
            },
            Arc::clone(&obs),
        )
        .expect("wal opens"),
    );
    let heap = Arc::new(
        MvccHeap::with_wal(db, IsolationLevel::Snapshot, CommitPath::Sharded, wal)
            .expect("genesis checkpoint writes")
            .with_obs(Arc::clone(&obs)),
    );
    Fixture {
        heap,
        oids,
        fields,
        next_txn: AtomicU64::new(1),
        dir,
        obs,
    }
}

fn run_cell(fx: &Fixture, threads: usize, txns_per_thread: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let heap = Arc::clone(&fx.heap);
            let field = fx.fields[t];
            let oids = &fx.oids;
            let next_txn = &fx.next_txn;
            scope.spawn(move || {
                for i in 0..txns_per_thread {
                    let txn = TxnId(next_txn.fetch_add(1, Ordering::Relaxed));
                    let ts = heap.begin(txn);
                    let oid = oids[(t + i) % oids.len()];
                    heap.write_at(ts, txn, oid, field, Value::Int(i as i64))
                        .expect("per-thread fields never conflict");
                    heap.commit(txn).expect("snapshot commit is infallible");
                }
            });
        }
    });
    start.elapsed().as_secs_f64()
}

/// Experiment rows for the log-maintenance pipeline: checkpoint +
/// truncation cycles with bounded log growth, retention, and a
/// window-limited recovery proving replay memory is O(window).
fn truncation_experiment(json: &mut Vec<String>) {
    let per_cycle = txns_per_cell(2000).min(500);
    let cycles = 3usize;
    let fx = fixture(1, DurabilityLevel::WalSync, 64, "trunc");
    println!("truncation sweep: {cycles} checkpoint+truncation cycles of {per_cycle} commits\n");
    let mut rows = Vec::new();
    let mut prev = fx.heap.wal().expect("wal attached").stats().snapshot();
    for cycle in 0..cycles {
        run_cell(&fx, 1, per_cycle);
        let log_path = Wal::log_path(&fx.dir);
        let before = std::fs::metadata(&log_path).expect("log exists").len();
        let ckpt_ts = fx.heap.checkpoint().expect("checkpoint writes");
        let after = std::fs::metadata(&log_path).expect("log exists").len();
        let stats = fx.heap.wal().expect("wal attached").stats().snapshot();
        let ckpt_files = std::fs::read_dir(&fx.dir)
            .expect("dir listable")
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".ckpt")
            })
            .count();
        assert!(
            after < before,
            "cycle {cycle}: truncation must compact the log ({before} -> {after} bytes)"
        );
        assert!(ckpt_files <= 2, "retention caps the checkpoint files");
        rows.push(vec![
            cycle.to_string(),
            per_cycle.to_string(),
            ckpt_ts.to_string(),
            before.to_string(),
            after.to_string(),
            (stats.truncated_bytes - prev.truncated_bytes).to_string(),
            (stats.checkpoints_removed - prev.checkpoints_removed).to_string(),
            ckpt_files.to_string(),
        ]);
        json.push(json_object(&[
            ("experiment", JsonVal::from("wal_truncation")),
            ("cycle", JsonVal::from(cycle)),
            ("commits", JsonVal::from(per_cycle)),
            ("checkpoint_ts", JsonVal::from(ckpt_ts)),
            ("log_bytes_before", JsonVal::from(before)),
            ("log_bytes_after", JsonVal::from(after)),
            (
                "truncated_bytes",
                JsonVal::from(stats.truncated_bytes - prev.truncated_bytes),
            ),
            (
                "checkpoints_removed",
                JsonVal::from(stats.checkpoints_removed - prev.checkpoints_removed),
            ),
            ("checkpoint_files", JsonVal::from(ckpt_files)),
        ]));
        prev = stats;
    }
    // A tail past the last checkpoint, then recovery through a reorder
    // window far smaller than the tail: peak replay memory stays at
    // the window, not the log.
    run_cell(&fx, 1, per_cycle);
    let dir = fx.dir.clone();
    drop(fx);
    let window = 8usize;
    let (_db, info) = recover_database_with_window(&dir, window).expect("recovery succeeds");
    assert_eq!(info.replayed, per_cycle as u64, "the whole tail replays");
    assert!(
        info.peak_reorder <= window as u64 + 1,
        "replay buffered {} frames with a window of {window}",
        info.peak_reorder
    );
    json.push(json_object(&[
        ("experiment", JsonVal::from("wal_recovery_window")),
        ("tail_commits", JsonVal::from(per_cycle)),
        ("reorder_window", JsonVal::from(window)),
        ("replayed", JsonVal::from(info.replayed)),
        ("peak_reorder", JsonVal::from(info.peak_reorder)),
    ]));
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "{}",
        render_table(
            &[
                "cycle",
                "commits",
                "ckpt ts",
                "log before",
                "log after",
                "truncated",
                "ckpts removed",
                "ckpt files",
            ],
            &rows
        )
    );
    println!(
        "recovery with reorder window {window}: {} records replayed, peak\n\
         reorder {} frames — replay memory is the window, not the log.\n",
        info.replayed, info.peak_reorder
    );
}

fn main() {
    let txns_per_thread = txns_per_cell(2000);
    let threads = bench_threads(&[1, 2, 4, 8, 16]);
    println!(
        "group-commit sweep: {txns_per_thread} single-field txns per writer thread,\n\
         per-thread fields over {HOT_OBJECTS} hot objects (no ww conflicts by design)\n"
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut recovery_checked = false;
    for level in [DurabilityLevel::Wal, DurabilityLevel::WalSync] {
        for max_batch in [1usize, 64, 1024] {
            for &n in &threads {
                let tag = format!("{}-{max_batch}-{n}", level.name());
                let fx = fixture(n, level, max_batch, &tag);
                let elapsed = run_cell(&fx, n, txns_per_thread);
                let commits = (n * txns_per_thread) as u64;
                let wal = fx.heap.wal().expect("wal attached");
                // Drain the flusher before reading counters: at the
                // async level acked commits may still be in flight
                // (the drain is outside the timed window — async ack
                // latency is the point of the level).
                wal.sync().expect("graceful flush");
                let stats = wal.stats().snapshot();
                assert_eq!(
                    stats.appends, commits,
                    "every writer commit appended exactly one record"
                );
                let mvcc = fx.heap.stats.snapshot();
                assert_eq!(mvcc.commits, commits);
                assert_eq!(mvcc.write_conflicts, 0, "fields are per-thread");
                let per_sec = commits as f64 / elapsed.max(1e-9);
                // Histogram summaries for the cell: commit-path total
                // and group-commit ack wait (the latter is zero at the
                // async level — commits never wait for the fsync).
                let commit_lat = fx.obs.phase_summary(Phase::CommitTotal);
                let ack_lat = fx.obs.phase_summary(Phase::GroupCommitAck);
                assert_eq!(
                    commit_lat.count, commits,
                    "every commit recorded a commit-path latency sample"
                );
                rows.push(vec![
                    level.name().to_string(),
                    max_batch.to_string(),
                    n.to_string(),
                    commits.to_string(),
                    format!("{per_sec:.0}"),
                    stats.log_bytes.to_string(),
                    stats.log_fsyncs.to_string(),
                    format!("{:.2}", stats.mean_group_commit()),
                    stats.group_commit_p99.to_string(),
                    stats.group_commit_max.to_string(),
                    format!("{:.0}", LatencySummary::us(commit_lat.p50)),
                    format!("{:.0}", LatencySummary::us(commit_lat.p99)),
                    format!("{:.0}", LatencySummary::us(ack_lat.p50)),
                    format!("{:.0}", LatencySummary::us(ack_lat.p99)),
                ]);
                json.push(json_object(&[
                    ("experiment", JsonVal::from("wal_bench")),
                    ("durability", JsonVal::from(level.name())),
                    ("max_batch", JsonVal::from(max_batch)),
                    ("threads", JsonVal::from(n)),
                    ("commits", JsonVal::from(commits)),
                    ("commits_per_sec", JsonVal::from(per_sec)),
                    ("log_bytes", JsonVal::from(stats.log_bytes)),
                    ("log_fsyncs", JsonVal::from(stats.log_fsyncs)),
                    (
                        "group_commit_mean",
                        JsonVal::from(stats.mean_group_commit()),
                    ),
                    ("group_commit_p50", JsonVal::from(stats.group_commit_p50)),
                    ("group_commit_p99", JsonVal::from(stats.group_commit_p99)),
                    ("group_commit_max", JsonVal::from(stats.group_commit_max)),
                    ("sync_waits", JsonVal::from(stats.sync_waits)),
                    (
                        "commit_p50_us",
                        JsonVal::from(LatencySummary::us(commit_lat.p50)),
                    ),
                    (
                        "commit_p99_us",
                        JsonVal::from(LatencySummary::us(commit_lat.p99)),
                    ),
                    ("ack_p50_us", JsonVal::from(LatencySummary::us(ack_lat.p50))),
                    ("ack_p99_us", JsonVal::from(LatencySummary::us(ack_lat.p99))),
                    ("ack_waits", JsonVal::from(ack_lat.count)),
                    ("ts_skips", JsonVal::from(mvcc.ts_skips)),
                    ("watermark_waits", JsonVal::from(mvcc.watermark_waits)),
                    ("read_pin_retries", JsonVal::from(mvcc.read_pin_retries)),
                    ("cow_reclaimed", JsonVal::from(mvcc.cow_reclaimed)),
                ]));
                // Embedded acceptance check, once: recover the smallest
                // wal-sync cell's directory and compare every field.
                if !recovery_checked && level == DurabilityLevel::WalSync {
                    recovery_checked = true;
                    let expected: Vec<(Oid, FieldId, Value)> = fx
                        .oids
                        .iter()
                        .flat_map(|&oid| {
                            fx.fields.iter().map(move |&f| (oid, f)).collect::<Vec<_>>()
                        })
                        .map(|(oid, f)| (oid, f, fx.heap.base().read(oid, f).unwrap()))
                        .collect();
                    let dir = fx.dir.clone();
                    drop(fx);
                    let (recovered, info) = MvccHeap::recover(
                        &dir,
                        IsolationLevel::Snapshot,
                        CommitPath::Sharded,
                        WalConfig::default(),
                    )
                    .expect("recovery succeeds");
                    assert_eq!(info.replayed, commits, "every commit replayed");
                    for (oid, f, v) in expected {
                        assert_eq!(
                            recovered.base().read(oid, f).as_ref(),
                            Ok(&v),
                            "recovered {oid}.{f} diverged"
                        );
                    }
                    println!(
                        "recovery check: {} records replayed, recovered state identical\n",
                        info.replayed
                    );
                    let _ = std::fs::remove_dir_all(&dir);
                    continue;
                }
                let dir = fx.dir.clone();
                drop(fx);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "durability",
                "batch cap",
                "threads",
                "commits",
                "commits/s",
                "log bytes",
                "fsyncs",
                "mean batch",
                "p99 batch",
                "max batch",
                "commit p50 µs",
                "commit p99 µs",
                "ack p50 µs",
                "ack p99 µs",
            ],
            &rows
        )
    );
    println!("shapes: wal-sync amortizes fsyncs across concurrent committers (mean");
    println!("batch rises with threads; batch cap 1 is the fsync-per-commit");
    println!("baseline); wal keeps commits off the fsync path entirely. Timing");
    println!("shapes are recorded, not asserted — smoke runs are tiny.\n");
    truncation_experiment(&mut json);
    match write_bench_json("BENCH_wal.json", &json) {
        Ok(path) => println!("\nmachine-readable results: {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_wal.json: {e}"),
    }
}
