//! Experiment E8 — the conservatism/overhead trade-off of §4.4 and §6:
//! transitive access vectors vs run-time field locking on branch-heavy
//! code.
//!
//! `maybe(p)` writes `g` only when `p > 0`. The TAV must assume the write
//! (it "represents impossible executions"), so `maybe` conflicts with the
//! reader of `g` even when the branch never fires. Run-time field locking
//! locks only what executes — fewer false conflicts — but pays a lock
//! call per field access. Shape: blocks(tav) grows with branch-miss
//! traffic while blocks(fieldlock) tracks the true rate; lock
//! requests(fieldlock) >> requests(tav).

use finecc_bench::{env_of, BRANCHY_SCHEMA};
use finecc_model::Value;
use finecc_runtime::{run_txn, CcScheme, SchemeKind};
use std::sync::Arc;

fn run(kind: SchemeKind, write_fraction_pct: i64, txns: usize) -> (u64, u64) {
    let env = env_of(BRANCHY_SCHEMA);
    let class = env.schema.class_by_name("branchy").unwrap();
    let oid = env.db.create(class);
    let scheme: Arc<dyn CcScheme> = Arc::from(kind.build(env));
    std::thread::scope(|s| {
        // One thread hammers `maybe`, one thread reads `g`.
        {
            let scheme = Arc::clone(&scheme);
            s.spawn(move || {
                for i in 0..txns {
                    // p > 0 on write_fraction% of the calls.
                    let p = if (i as i64 * 100 / txns as i64) < write_fraction_pct {
                        1
                    } else {
                        -1
                    };
                    let out = run_txn(scheme.as_ref(), 100, |txn| {
                        scheme.send(txn, oid, "maybe", &[Value::Int(p)])
                    });
                    assert!(out.is_committed());
                }
            });
        }
        {
            let scheme = Arc::clone(&scheme);
            s.spawn(move || {
                for _ in 0..txns {
                    let out = run_txn(scheme.as_ref(), 100, |txn| {
                        scheme.send(txn, oid, "reader", &[])
                    });
                    assert!(out.is_committed());
                }
            });
        }
    });
    let st = scheme.stats();
    (st.requests, st.blocks)
}

fn main() {
    let txns = 500;
    println!("branchy workload: writer thread (maybe) vs reader thread (reader)");
    println!("({txns} txns per thread; sweep over the fraction of calls that");
    println!("actually take the writing branch)\n");
    let mut rows = Vec::new();
    for pct in [0i64, 25, 50, 100] {
        for kind in [SchemeKind::Tav, SchemeKind::FieldLock] {
            let (requests, blocks) = run(kind, pct, txns);
            rows.push(vec![
                format!("{pct}%"),
                kind.name().to_string(),
                requests.to_string(),
                blocks.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        finecc_sim::render_table(&["branch taken", "scheme", "lock reqs", "blocks"], &rows)
    );
    println!("shape check at 0% (branch never taken):");
    let tav0_blocks: u64 = rows[0][3].parse().unwrap();
    let fl0_reqs: u64 = rows[1][2].parse().unwrap();
    let tav0_reqs: u64 = rows[0][2].parse().unwrap();
    println!("  tav still conflicts ({tav0_blocks} blocks: impossible executions are locked),");
    println!("  fieldlock avoids them but issues {fl0_reqs} lock calls vs tav's {tav0_reqs}.");
    assert!(
        fl0_reqs > tav0_reqs,
        "fieldlock must cost more lock traffic"
    );
    println!("\nThis is the paper's §6 interpreter-vs-compiler trade-off, measured.");
}
