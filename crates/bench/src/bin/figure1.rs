//! Experiment F1 — **Figure 1** of the paper: parses the example program,
//! echoes it through the pretty-printer (round-trip check), and prints
//! the per-definition analysis facts (Definitions 6–8).

use finecc_lang::parser::{parse_program, FIGURE1_SOURCE};
use finecc_lang::{analyze, build_schema, pretty};

fn main() {
    let prog = parse_program(FIGURE1_SOURCE).expect("Figure 1 parses");
    let rendered = pretty::program_to_string(&prog);
    assert_eq!(
        parse_program(&rendered).expect("round-trip parses"),
        prog,
        "pretty-print round trip"
    );
    println!("Figure 1: An example of object-oriented programming");
    println!("{rendered}");

    let (schema, bodies) = build_schema(FIGURE1_SOURCE).expect("builds");
    println!("-- per-definition analysis (Defs 6-8) --");
    for mi in schema.methods() {
        let facts = analyze(&schema, mi.owner, &mi.sig.params, bodies.body(mi.id))
            .expect("analysis succeeds");
        let class = &schema.class(mi.owner).name;
        let rd: Vec<&str> = facts
            .reads
            .iter()
            .map(|&f| schema.field(f).name.as_str())
            .collect();
        let wr: Vec<&str> = facts
            .writes
            .iter()
            .map(|&f| schema.field(f).name.as_str())
            .collect();
        let dsc: Vec<&str> = facts.self_calls.iter().map(String::as_str).collect();
        let psc: Vec<String> = facts
            .prefixed_calls
            .iter()
            .map(|(c, m)| format!("{}.{}", schema.class(*c).name, m))
            .collect();
        println!(
            "({class},{}):  reads={{{}}} writes={{{}}} DSC={{{}}} PSC={{{}}}",
            mi.sig.name,
            rd.join(","),
            wr.join(","),
            dsc.join(","),
            psc.join(",")
        );
    }
}
