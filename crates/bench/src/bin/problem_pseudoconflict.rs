//! Experiment E7 — pseudo-conflicts (problem P4): disjoint-field writers
//! on a single hot instance.
//!
//! Under read/write instance locking every pair of writers conflicts and
//! the hot instance serializes all throughput; under the generated
//! commutativity matrices (and under run-time field locks, and mostly
//! under the relational decomposition) they proceed in parallel. Shape:
//! blocks(rw) >> blocks(tav) ≈ 0, throughput(tav) > throughput(rw),
//! growing with the number of disjoint writer methods.

use finecc_bench::{disjoint_writers_schema, env_of};
use finecc_model::Value;
use finecc_runtime::{run_txn, CcScheme, SchemeKind};
use std::sync::Arc;
use std::time::Instant;

fn run(kind: SchemeKind, writers: usize, threads: usize, per_thread: usize) -> (u64, u64, f64) {
    let env = env_of(&disjoint_writers_schema(writers));
    let wide = env.schema.class_by_name("wide").unwrap();
    let oid = env.db.create(wide); // ONE hot instance
    let scheme: Arc<dyn CcScheme> = Arc::from(kind.build(env));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let scheme = Arc::clone(&scheme);
            s.spawn(move || {
                for i in 0..per_thread {
                    // Each thread works its own field: fully commuting.
                    let method = format!("w{}", (t + i * threads) % writers);
                    let out = run_txn(scheme.as_ref(), 200, |txn| {
                        scheme.send(txn, oid, &method, &[Value::Int(1)])
                    });
                    assert!(out.is_committed());
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let st = scheme.stats();

    // Invariant: every increment landed.
    let env = scheme.env();
    let total: i64 = (0..writers)
        .map(|i| {
            env.read_named(oid, "wide", &format!("f{i}"))
                .as_int()
                .expect("int field")
        })
        .sum();
    assert_eq!(total, (threads * per_thread) as i64);
    (
        st.blocks,
        st.deadlocks,
        threads as f64 * per_thread as f64 / elapsed,
    )
}

fn main() {
    let threads = 4;
    let per_thread = 400;
    println!(
        "disjoint-field writers on ONE instance ({} threads x {} txns)\n",
        threads, per_thread
    );
    let mut rows = Vec::new();
    for writers in [2usize, 4, 8] {
        for kind in [SchemeKind::Rw, SchemeKind::Tav, SchemeKind::FieldLock] {
            let (blocks, deadlocks, tput) = run(kind, writers, threads, per_thread);
            rows.push(vec![
                writers.to_string(),
                kind.name().to_string(),
                blocks.to_string(),
                deadlocks.to_string(),
                format!("{tput:.0}"),
            ]);
        }
    }
    println!(
        "{}",
        finecc_sim::render_table(
            &["writer methods", "scheme", "blocks", "deadlocks", "txn/s"],
            &rows
        )
    );
    println!("shape check: rw blocks pile up on the hot instance; tav/fieldlock ~0.");
    // Mechanical check on the 4-writer row set.
    let rw_blocks: u64 = rows[3][2].parse().unwrap();
    let tav_blocks: u64 = rows[4][2].parse().unwrap();
    assert!(
        rw_blocks > tav_blocks,
        "rw must block more than tav on disjoint writers"
    );
}
