//! Experiment T2 — regenerates **Table 2** of the paper: the
//! commutativity relation of class c2, *generated* from Figure 1's source
//! code by the compiler (no hand-written entries), plus the c1
//! restriction remark.

use finecc_lang::parser::FIGURE1_SOURCE;

fn main() {
    let (schema, bodies) = finecc_lang::build_schema(FIGURE1_SOURCE).expect("parse");
    let compiled = finecc_core::compile(&schema, &bodies).expect("compile");

    let c2 = schema.class_by_name("c2").unwrap();
    println!("Table 2: Commutativity relation of class c2 (generated)");
    println!("{}", compiled.class(c2).to_table_string());

    let c1 = schema.class_by_name("c1").unwrap();
    println!("Commutativity relation of class c1 (the paper: \"obtained as");
    println!("the restriction of Table 2 to m1, m2, and m3\"):");
    println!("{}", compiled.class(c1).to_table_string());

    // Mechanical check of the restriction remark.
    let t1 = compiled.class(c1);
    let t2 = compiled.class(c2);
    for a in ["m1", "m2", "m3"] {
        for b in ["m1", "m2", "m3"] {
            assert_eq!(t1.commute_names(a, b), t2.commute_names(a, b));
        }
    }
    println!("restriction property verified ✓");
}
