//! Experiment E2 — the §5.2 scenario: T1–T4 concurrency under all six
//! schemes, on Figure 1 and on the no-key-write variant, with the paper's
//! stated outcomes asserted.

use finecc_runtime::SchemeKind;
use finecc_sim::figure1::{FIGURE1_NO_KEY_WRITE_SOURCE, FIGURE1_SOURCE};
use finecc_sim::scenarios::{scenario_outcomes, TxnKind};
use TxnKind::*;

fn show(kind: SchemeKind, source: &str, shared: bool) -> finecc_sim::ScenarioOutcome {
    let o = scenario_outcomes(kind, source, shared);
    println!("--- scheme: {} (shared instance: {shared}) ---", o.scheme);
    println!("{}", o.to_table_string());
    let sets: Vec<String> = o
        .maximal_sets
        .iter()
        .map(|s| {
            s.iter()
                .map(|t| format!("{t:?}"))
                .collect::<Vec<_>>()
                .join("‖")
        })
        .collect();
    println!("maximal concurrent sets: {}\n", sets.join("  or  "));
    o
}

fn main() {
    println!("The four transactions of §5.2:");
    for t in TxnKind::ALL {
        println!("  {t:?}: {}", t.describe());
    }
    println!();

    println!("===== Figure 1 (m2 writes the key field f1) =====\n");
    let tav = show(SchemeKind::Tav, FIGURE1_SOURCE, false);
    assert_eq!(tav.maximal_sets, vec![vec![T1, T3, T4], vec![T2, T3, T4]]);
    println!("paper: \"either T1||T3||T4, or T2||T3||T4 are allowed\" ✓\n");

    let rw = show(SchemeKind::Rw, FIGURE1_SOURCE, false);
    assert_eq!(rw.maximal_sets, vec![vec![T1, T3], vec![T1, T4]]);
    println!("paper: \"either T1||T3 would have been allowed …, or T1||T4\" ✓\n");

    let rel = show(SchemeKind::Relational, FIGURE1_SOURCE, false);
    assert_eq!(rel.maximal_sets, vec![vec![T1, T3], vec![T3, T4]]);
    println!("paper: \"either T1||T3, or T3||T4 are allowed\" ✓\n");

    show(SchemeKind::FieldLock, FIGURE1_SOURCE, false);

    let mvcc = show(SchemeKind::Mvcc, FIGURE1_SOURCE, false);
    assert_eq!(mvcc.maximal_sets, vec![vec![T1, T3, T4], vec![T2, T3, T4]]);
    println!("beyond the paper: versioning recovers the paper's own maximal sets —");
    println!("field-level write conflicts admit exactly what the TAVs admit here,");
    println!("with snapshot-isolation (not serializable) semantics.\n");

    let mvcc_ssi = show(SchemeKind::MvccSsi, FIGURE1_SOURCE, false);
    assert_eq!(mvcc_ssi.maximal_sets, mvcc.maximal_sets);
    println!("mvcc-ssi admits the same overlaps at execution time — the return to");
    println!("serializability is enforced later, by commit-time dangerous-structure");
    println!("validation, not by narrower admission.\n");

    println!("===== Variant: m2 does not modify the key field =====\n");
    let rel2 = show(SchemeKind::Relational, FIGURE1_NO_KEY_WRITE_SOURCE, false);
    assert!(rel2.admits(&[T1, T3, T4]));
    assert!(!rel2.admits(&[T2, T3, T4]));
    println!("paper: \"T1||T3||T4 (but not T2||T3||T4) would have been allowed\" ✓\n");

    println!("===== Caveat: T3 shares T1's instance =====\n");
    let rw_shared = show(SchemeKind::Rw, FIGURE1_SOURCE, true);
    assert!(!rw_shared.admits(&[T1, T3]));
    let tav_shared = show(SchemeKind::Tav, FIGURE1_SOURCE, true);
    assert!(tav_shared.admits(&[T1, T3]));
    println!("RW needs disjoint instances for T1||T3; the TAV scheme does not");
    println!("(m1 and m3 commute even on a common instance).");
}
