//! Experiment E5 — locking overhead (problem P2): how many lock-manager
//! controls one *logical* access costs, as the self-call chain deepens.
//!
//! Paper: "invoking m1 on an instance of c1 or c2 leads to controlling
//! concurrency thrice" under per-message schemes, but once with TAVs.
//! Shape: TAV flat at 2 requests (class + instance); RW grows ~2·depth;
//! field locking grows with the number of field accesses.

use finecc_bench::{chain_schema, env_of};
use finecc_model::Value;
use finecc_runtime::{run_txn, SchemeKind};

fn main() {
    println!("lock-manager requests per top message, by self-call depth\n");
    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 8, 16, 32] {
        let mut row = vec![depth.to_string()];
        for kind in [SchemeKind::Tav, SchemeKind::Rw, SchemeKind::FieldLock] {
            let env = env_of(&chain_schema(depth));
            let chain = env.schema.class_by_name("chain").unwrap();
            let oid = env.db.create(chain);
            let scheme = kind.build(env);
            let out = run_txn(scheme.as_ref(), 3, |txn| {
                scheme.send(txn, oid, "m0", &[Value::Int(1)])
            });
            assert!(out.is_committed());
            row.push(scheme.stats().requests.to_string());
        }
        rows.push(row);
    }
    println!(
        "{}",
        finecc_sim::render_table(&["depth", "tav", "rw", "fieldlock"], &rows)
    );
    println!("shape check: tav constant; rw ≈ 2·depth; fieldlock ≈ field accesses.");

    // The paper's concrete instance: m1 on c2 = 3 controls under RW-per-
    // message (m1, m2→c1.m2 counts once per message, m3), 1 under TAV.
    let env = env_of(finecc_lang::parser::FIGURE1_SOURCE);
    let c2 = env.schema.class_by_name("c2").unwrap();
    let oid = env.db.create(c2);
    let tav = SchemeKind::Tav.build(env.clone());
    let out = run_txn(tav.as_ref(), 3, |txn| {
        tav.send(txn, oid, "m1", &[Value::Int(1)])
    });
    assert!(out.is_committed());
    let env2 = env_of(finecc_lang::parser::FIGURE1_SOURCE);
    let oid2 = env2.db.create(c2);
    let rw = SchemeKind::Rw.build(env2);
    let out = run_txn(rw.as_ref(), 3, |txn| {
        rw.send(txn, oid2, "m1", &[Value::Int(1)])
    });
    assert!(out.is_committed());
    println!(
        "\nFigure 1, m1 on a c2 instance: tav = {} requests, rw = {} requests",
        tav.stats().requests,
        rw.stats().requests
    );
    assert_eq!(tav.stats().requests, 2);
    assert_eq!(rw.stats().requests, 8, "4 messages × (class + instance)");
}
