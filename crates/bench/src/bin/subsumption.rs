//! Experiment E9 — claim (5): read/write schemes are a special case of
//! the framework. A class whose methods are exactly one pure reader and
//! one writer generates the 2×2 RW table; driving both mode sources
//! through the lock manager yields identical decisions on a shared
//! request script.

use finecc_lock::{
    CommutSource, LockManager, LockMode, ResourceId, RwSource, TryAcquire, READ, WRITE,
};
use finecc_model::{ClassId, Oid};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

const RW_AS_CLASS: &str = r#"
class cell {
  fields { v: integer; }
  method read_it is
    var t := v + 0
  end
  method write_it(x) is
    v := x
  end
}
"#;

fn main() {
    let (schema, bodies) = finecc_lang::build_schema(RW_AS_CLASS).expect("parse");
    let compiled = Arc::new(finecc_core::compile(&schema, &bodies).expect("compile"));
    let cell = schema.class_by_name("cell").unwrap();
    let table = compiled.class(cell);
    println!("generated matrix of the reader/writer class:");
    println!("{}", table.to_table_string());

    let r_mode = table.index_of("read_it").unwrap() as u16;
    let w_mode = table.index_of("write_it").unwrap() as u16;

    // Fuzz a request script through both managers and compare decisions.
    let commut = LockManager::new(CommutSource::new(Arc::clone(&compiled)));
    let rw = LockManager::new(RwSource);
    let res_cm = ResourceId::Instance(Oid(1), cell);
    let res_rw = ResourceId::Instance(Oid(1), ClassId(0));

    let mut rng = StdRng::seed_from_u64(2024);
    let mut live_cm: Vec<finecc_model::TxnId> = Vec::new();
    let mut live_rw: Vec<finecc_model::TxnId> = Vec::new();
    let mut agree = 0u64;
    let steps = 10_000;
    for _ in 0..steps {
        if !live_cm.is_empty() && rng.random_bool(0.4) {
            // Release a random live pair.
            let i = rng.random_range(0..live_cm.len());
            commut.release_all(live_cm.swap_remove(i));
            rw.release_all(live_rw.swap_remove(i));
            agree += 1;
            continue;
        }
        let writer = rng.random_bool(0.5);
        let (cm_mode, rw_mode) = if writer {
            (w_mode, WRITE)
        } else {
            (r_mode, READ)
        };
        let t_cm = commut.begin();
        let t_rw = rw.begin();
        let d_cm = commut.try_acquire(t_cm, res_cm, LockMode::plain(cm_mode));
        let d_rw = rw.try_acquire(t_rw, res_rw, LockMode::plain(rw_mode));
        assert_eq!(d_cm, d_rw, "decisions diverged");
        agree += 1;
        if d_cm == TryAcquire::Granted {
            live_cm.push(t_cm);
            live_rw.push(t_rw);
        }
    }
    println!("{steps} randomized acquire/release steps: {agree} decisions, all identical ✓");
    println!("classical RW locking is an instance of the commutativity framework.");
}
