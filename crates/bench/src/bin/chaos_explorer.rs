//! Seeded chaos exploration across the scheme × durability matrix.
//!
//! Default mode sweeps a fixed batch of seeds over all six schemes at
//! every durability level under the virtual-time scheduler, checking
//! the invariants (lost own writes, torn pairs, watermark regressions,
//! recovery = committed prefix) on every run. Any anomaly is
//! minimized and written out as a `finecc-chaos-repro v1` artifact,
//! and the process exits nonzero — this is the CI `chaos-smoke` job.
//!
//! `CHAOS_RECOVERY=1` sweeps the *durability pipeline* instead: every
//! checkpoint fault site × {io-error, crash} × hit is injected into
//! mid-run checkpoints of the mvcc schemes at `WalSync`, and every run
//! additionally verifies restartable recovery (crash the recovery at
//! each probe site, recover again, demand the identical state). Zero
//! anomalies expected — this is the recovery half of the CI
//! `recovery-smoke` job.
//!
//! `CHAOS_DEMO=1` instead demonstrates the full find → minimize →
//! replay loop on a *known* bug: it disables the mvcc commit barrier
//! (`wait_published`) through the fault plane, explores until the
//! resulting lost-own-write anomaly surfaces, shrinks the schedule,
//! replays the repro file, and asserts the anomaly reproduces.
//!
//! Environment:
//! * `CHAOS_SEEDS`       — seeds per cell (default 10; 2 in the
//!   recovery sweep)
//! * `CHAOS_SEED_START`  — first seed (default 1)
//! * `CHAOS_WORKERS`     — workers per scenario (default 3)
//! * `CHAOS_OPS`         — ops per worker (default 6; 8 in the
//!   recovery sweep so checkpoints land mid-run)
//! * `CHAOS_HITS`        — fault hits swept per site in the recovery
//!   sweep (default 2: the genesis checkpoint and the first online one)
//! * `CHAOS_OUT`         — repro artifact directory (default
//!   `target/chaos-repros`)
//! * `CHAOS_RECOVERY`    — run the checkpoint/recovery fault sweep
//! * `CHAOS_DEMO`        — run the known-bug demo instead of the sweep

use finecc_chaos::{FaultKind, FaultPlan, FaultSpec, Site};
use finecc_obs::MetricsRegistry;
use finecc_runtime::{DurabilityLevel, SchemeKind};
use finecc_sim::chaos::{
    explore, minimize, pinned, replay_repro, run_chaos, write_repro, Anomaly, ChaosReport,
    ChaosScenario,
};
use std::path::{Path, PathBuf};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn out_dir() -> PathBuf {
    std::env::var("CHAOS_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/chaos-repros"))
}

/// Writes a Prometheus metrics snapshot of a failing run next to its
/// minimized repro (`<name>.metrics.prom`), so the run's facts —
/// commits, retries, anomaly counts by kind, checkpoint outcomes,
/// virtual ticks — travel with the reproduction artifact.
fn write_metrics_snapshot(repro: &Path, scheme: &str, cell: &str, seed: u64, r: &ChaosReport) {
    let mut kinds: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for a in &r.anomalies {
        *kinds.entry(a.kind()).or_insert(0) += 1;
    }
    let kinds: Vec<(&'static str, u64)> = kinds.into_iter().collect();
    let facts = (
        r.commits,
        r.retries,
        r.exhausted,
        r.failed,
        r.log_failures,
        r.checkpoints,
        r.checkpoint_failures,
        r.outcome.ticks,
    );
    let seed_label = seed.to_string();
    let reg = MetricsRegistry::new();
    reg.register_fn(
        &[("scheme", scheme), ("cell", cell), ("seed", &seed_label)],
        move |c| {
            c.counter("finecc.chaos.commits", facts.0);
            c.counter("finecc.chaos.retries", facts.1);
            c.counter("finecc.chaos.exhausted", facts.2);
            c.counter("finecc.chaos.failed", facts.3);
            c.counter("finecc.chaos.log_failures", facts.4);
            c.counter("finecc.chaos.checkpoints", facts.5);
            c.counter("finecc.chaos.checkpoint_failures", facts.6);
            c.counter("finecc.chaos.ticks", facts.7);
            for (k, n) in &kinds {
                c.counter_with("finecc.chaos.anomalies", &[("kind", k)], *n);
            }
        },
    );
    let path = repro.with_extension("metrics.prom");
    if let Err(e) = std::fs::write(&path, reg.render_prometheus()) {
        eprintln!("  (could not write metrics snapshot: {e})");
    }
}

fn main() {
    if std::env::var("CHAOS_DEMO").is_ok_and(|v| v != "0") {
        demo_known_bug();
        return;
    }
    if std::env::var("CHAOS_RECOVERY").is_ok_and(|v| v != "0") {
        recovery_sweep();
        return;
    }
    sweep();
}

/// The CI smoke sweep: fixed seed batch, all schemes, all durability
/// levels, zero anomalies expected.
fn sweep() {
    let start = env_u64("CHAOS_SEED_START", 1);
    let count = env_u64("CHAOS_SEEDS", 10);
    let workers = env_u64("CHAOS_WORKERS", 3) as usize;
    let ops = env_u64("CHAOS_OPS", 6) as usize;
    let levels = [
        DurabilityLevel::None,
        DurabilityLevel::Wal,
        DurabilityLevel::WalSync,
    ];
    let mut runs = 0u64;
    let mut commits = 0u64;
    let mut retries = 0u64;
    let mut ticks = 0u64;
    let mut failures = 0u32;
    println!(
        "chaos sweep: seeds {start}..{} x 6 schemes x 3 durability levels",
        start + count
    );
    for kind in SchemeKind::ALL {
        for level in levels {
            for seed in start..start + count {
                let mut sc = ChaosScenario::new(kind, seed).durable(level);
                sc.workers = workers;
                sc.ops_per_worker = ops;
                let report = match run_chaos(&sc) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("FAIL {kind}/{} seed {seed}: io error {e}", level.name());
                        failures += 1;
                        continue;
                    }
                };
                runs += 1;
                commits += report.commits;
                retries += report.retries;
                ticks += report.outcome.ticks;
                if !report.anomalies.is_empty() {
                    failures += 1;
                    let minimized = minimize(&sc, &report.outcome.decisions, 200);
                    let path = out_dir().join(format!(
                        "anomaly-{}-{}-seed{seed}.repro",
                        kind.name(),
                        level.name()
                    ));
                    let pin = pinned(&sc, &minimized);
                    if let Err(e) = write_repro(&path, &pin, &minimized) {
                        eprintln!("  (could not write repro: {e})");
                    }
                    write_metrics_snapshot(&path, kind.name(), level.name(), seed, &report);
                    eprintln!(
                        "FAIL {kind}/{} seed {seed}: {} anomalies, repro at {}",
                        level.name(),
                        report.anomalies.len(),
                        path.display()
                    );
                    for a in &report.anomalies {
                        eprintln!("  - {a}");
                    }
                }
            }
        }
    }
    println!(
        "{runs} runs, {commits} commits, {retries} retries, {ticks} virtual ticks, {failures} failures"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// The durability-pipeline sweep: inject an io-error or crash at every
/// checkpoint fault site × hit into mid-run checkpoints of the mvcc
/// schemes at `WalSync` (hit 0 is the genesis checkpoint at attach),
/// plus a fault-free baseline cell per scheme. Every run also checks
/// recovery = acked prefix and — via `verify_restartable` — that a
/// recovery crashed at any probe site recovers identically on restart.
fn recovery_sweep() {
    let start = env_u64("CHAOS_SEED_START", 1);
    let count = env_u64("CHAOS_SEEDS", 2);
    let workers = env_u64("CHAOS_WORKERS", 3) as usize;
    let ops = env_u64("CHAOS_OPS", 8) as usize;
    let hits = env_u64("CHAOS_HITS", 2);
    let kinds = [FaultKind::IoError, FaultKind::Crash];
    // One fault-free cell (None), then the full site × kind × hit grid.
    let mut cells: Vec<Option<(Site, FaultKind, u64)>> = vec![None];
    for site in Site::CHECKPOINT {
        for kind in kinds {
            for hit in 0..hits {
                cells.push(Some((site, kind, hit)));
            }
        }
    }
    let mut runs = 0u64;
    let mut commits = 0u64;
    let mut checkpoints = 0u64;
    let mut refused = 0u64;
    let mut failures = 0u32;
    println!(
        "recovery sweep: seeds {start}..{} x 2 mvcc schemes x {} fault cells \
         (restartable recovery verified on every run)",
        start + count,
        cells.len()
    );
    for kind in [SchemeKind::Mvcc, SchemeKind::MvccSsi] {
        for cell in &cells {
            for seed in start..start + count {
                let mut sc = ChaosScenario::new(kind, seed).durable(DurabilityLevel::WalSync);
                sc.workers = workers;
                sc.ops_per_worker = ops;
                sc.checkpoint_every = 2;
                sc.verify_restartable = true;
                let label = match cell {
                    Some((site, fk, hit)) => {
                        sc = sc.with_faults(FaultPlan::of([FaultSpec::once(*site, *hit, *fk)]));
                        format!("{}@{}#{hit}", fk.name(), site.name())
                    }
                    None => "baseline".to_string(),
                };
                let report = match run_chaos(&sc) {
                    Ok(r) => r,
                    Err(e) => {
                        eprintln!("FAIL {kind}/{label} seed {seed}: io error {e}");
                        failures += 1;
                        continue;
                    }
                };
                runs += 1;
                commits += report.commits;
                checkpoints += report.checkpoints;
                refused += report.checkpoint_failures;
                if !report.anomalies.is_empty() {
                    failures += 1;
                    let minimized = minimize(&sc, &report.outcome.decisions, 200);
                    let path = out_dir().join(format!(
                        "recovery-anomaly-{}-{label}-seed{seed}.repro",
                        kind.name()
                    ));
                    let pin = pinned(&sc, &minimized);
                    if let Err(e) = write_repro(&path, &pin, &minimized) {
                        eprintln!("  (could not write repro: {e})");
                    }
                    write_metrics_snapshot(&path, kind.name(), &label, seed, &report);
                    eprintln!(
                        "FAIL {kind}/{label} seed {seed}: {} anomalies, repro at {}",
                        report.anomalies.len(),
                        path.display()
                    );
                    for a in &report.anomalies {
                        eprintln!("  - {a}");
                    }
                }
            }
        }
    }
    println!(
        "{runs} runs, {commits} commits, {checkpoints} checkpoints taken, \
         {refused} checkpoints refused by injected faults, {failures} failures"
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// The known-bug regression demo: disable the commit barrier, find the
/// lost-own-write anomaly, minimize, write a repro, replay it.
fn demo_known_bug() {
    let faults = FaultPlan::of([FaultSpec::always(
        Site::CommitPublishWait,
        FaultKind::Disable,
    )]);
    let base = ChaosScenario::new(SchemeKind::Mvcc, 0).with_faults(faults);
    println!("exploring with the wait_published commit barrier disabled…");
    let finding = explore(&base, 1..201, 400)
        .expect("exploration runs")
        .expect("a disabled commit barrier must eventually lose an own write");
    assert!(
        finding
            .report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::LostOwnWrite { .. })),
        "expected a lost own write, got {:?}",
        finding.report.anomalies
    );
    println!(
        "seed {} fails: {} (schedule {} decisions, minimized to {})",
        finding.seed,
        finding.report.anomalies[0],
        finding.report.outcome.decisions.len(),
        finding.minimized.len()
    );
    let sc = pinned(
        &ChaosScenario {
            seed: finding.seed,
            ..base
        },
        &finding.minimized,
    );
    let path = out_dir().join("lost-own-write.repro");
    write_repro(&path, &sc, &finding.minimized).expect("repro written");
    write_metrics_snapshot(&path, "mvcc", "demo", finding.seed, &finding.report);
    let replayed = replay_repro(&path).expect("repro replays");
    assert!(
        !replayed.anomalies.is_empty(),
        "replaying the minimized repro must reproduce the anomaly"
    );
    // And the direct (non-file) replay must agree byte-for-byte.
    let direct = run_chaos(&sc).expect("direct replay runs");
    assert_eq!(direct, replayed, "file round trip changes nothing");
    println!(
        "replayed {} → {} (deterministic, {} virtual ticks)",
        path.display(),
        replayed.anomalies[0],
        replayed.outcome.ticks
    );
}
