//! Experiment E6 — lock escalation deadlocks (problem P3).
//!
//! The paper cites System R: 97 % of deadlocks came from read→write
//! escalation; up to 76 % avoidable by announcing the most exclusive
//! mode up front. We reproduce the *mechanism* on a synthetic hot-spot
//! workload: `outer` reads, then self-sends the writer `bump`. Under
//! per-message RW two concurrent `outer`s read-lock and then both try to
//! upgrade — a certain deadlock; the TAV scheme announces Write at the
//! top message and never deadlocks here.

use finecc_bench::{env_of, ESCALATION_SCHEMA};
use finecc_model::Value;
use finecc_runtime::{run_txn, CcScheme, SchemeKind};
use std::sync::Arc;

fn run(kind: SchemeKind, hot_instances: usize, threads: usize, per_thread: usize) -> Vec<String> {
    let env = env_of(ESCALATION_SCHEMA);
    let hot = env.schema.class_by_name("hot").unwrap();
    let oids: Vec<_> = (0..hot_instances).map(|_| env.db.create(hot)).collect();
    let scheme: Arc<dyn CcScheme> = Arc::from(kind.build(env));

    std::thread::scope(|s| {
        for t in 0..threads {
            let scheme = Arc::clone(&scheme);
            let oids = oids.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let oid = oids[(t + i) % oids.len()];
                    let out = run_txn(scheme.as_ref(), 500, |txn| {
                        scheme.send(txn, oid, "outer", &[Value::Int(1)])
                    });
                    assert!(out.is_committed(), "{kind:?} txn must finish");
                }
            });
        }
    });

    // Sanity: no lost updates despite all the aborting and retrying.
    let total: i64 = oids
        .iter()
        .map(|&o| {
            scheme
                .env()
                .read_named(o, "hot", "n")
                .as_int()
                .expect("n is an int")
        })
        .sum();
    assert_eq!(total, (threads * per_thread) as i64);

    let st = scheme.stats();
    let committed = threads * per_thread;
    vec![
        kind.name().to_string(),
        committed.to_string(),
        st.deadlocks.to_string(),
        st.upgrades.to_string(),
        st.blocks.to_string(),
        format!("{:.1}%", 100.0 * st.deadlocks as f64 / committed as f64),
    ]
}

fn main() {
    println!("escalation workload: read-then-write on hot instances");
    println!("(8 threads x 150 txns, 2 hot instances)\n");
    let mut rows = Vec::new();
    for kind in [SchemeKind::Rw, SchemeKind::FieldLock, SchemeKind::Tav] {
        rows.push(run(kind, 2, 8, 150));
    }
    println!(
        "{}",
        finecc_sim::render_table(
            &[
                "scheme",
                "committed",
                "deadlocks",
                "upgrades",
                "blocks",
                "deadlocks/txn"
            ],
            &rows
        )
    );
    let deadlocks = |row: &Vec<String>| row[2].parse::<u64>().unwrap();
    let rw = deadlocks(&rows[0]);
    let tav = deadlocks(&rows[2]);
    println!("shape check: deadlocks(rw) = {rw} >> deadlocks(tav) = {tav}");
    assert!(tav == 0, "announcing the strongest mode up front kills P3");
    assert!(
        rw > 0,
        "per-message escalation must deadlock under contention"
    );
}
