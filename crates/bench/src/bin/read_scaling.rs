//! Experiment E9 — read-path scaling: what reader latch freedom buys.
//!
//! N reader threads hammer snapshot reads over a hot set of versioned
//! objects, at rising thread counts, under the two read-path
//! configurations the heap retains:
//!
//! * **sharded** (production): latch-free reads over the copy-on-write
//!   chains — a reader pins the reclamation clock (two atomic ops),
//!   loads two published pointers, and walks the records; a chain hit
//!   never takes a mutex, an `RwLock`, or a base-store access.
//! * **coarse-baseline** (the seed's reader): every read holds the
//!   per-OID chain-shard latch across its walk, so readers contend
//!   with each other and with writers on the shard mutexes.
//!
//! Each sweep runs twice: pure readers, and readers with one background
//! writer thread churning versions on the hot set (the case latch-free
//! reads are really for — under the latched baseline every commit flip
//! collides with every reader of the same shard).
//!
//! Shape: sharded reads/sec scales with threads where the baseline
//! flattens on shard-latch contention, and the sharded run's
//! `read_base_loads` stays **zero** — every read was answered entirely
//! from the chains (this one is asserted: it is the acceptance check
//! that the hit path is latch-free end to end; timing shapes are not
//! asserted — CI smoke runs are too small — but recorded in the JSON).
//!
//! `FINECC_BENCH_TXNS` overrides the per-thread read count and
//! `FINECC_BENCH_THREADS` the thread list (the CI bench-smoke job sets
//! both). The run emits `BENCH_read_scaling.json` (into
//! `FINECC_BENCH_JSON_DIR`, default the workspace root) so the perf
//! trajectory is tracked across PRs.

use finecc_bench::{bench_threads, json_object, txns_per_cell, write_bench_json, JsonVal};
use finecc_model::{FieldId, FieldType, Oid, SchemaBuilder, TxnId, Value};
use finecc_mvcc::{CommitPath, IsolationLevel, MvccHeap};
use finecc_sim::render_table;
use finecc_store::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hot objects the readers cycle over.
const HOT_OBJECTS: usize = 16;
/// Fields per object (readers cycle over these too).
const FIELDS: usize = 4;
/// Committed versions stacked on every field before the sweep starts.
const WARMUP_VERSIONS: u64 = 3;

struct Fixture {
    heap: Arc<MvccHeap>,
    oids: Vec<Oid>,
    fields: Vec<FieldId>,
    /// Keeps the GC horizon at 0 so the warmed chains are never
    /// reclaimed: every read of the sweep is a chain hit by
    /// construction.
    _pin: finecc_mvcc::Snapshot,
    next_txn: AtomicU64,
}

fn fixture(path: CommitPath) -> Fixture {
    let mut b = SchemaBuilder::new();
    {
        let c = b.class("hot");
        for f in 0..FIELDS {
            c.field(&format!("f{f}"), FieldType::Int);
        }
    }
    let schema = Arc::new(b.finish().unwrap());
    let class = schema.class_by_name("hot").unwrap();
    let fields: Vec<FieldId> = (0..FIELDS)
        .map(|f| schema.resolve_field(class, &format!("f{f}")).unwrap())
        .collect();
    let db = Arc::new(Database::new(Arc::clone(&schema)));
    let oids: Vec<Oid> = (0..HOT_OBJECTS).map(|_| db.create(class)).collect();
    let heap = Arc::new(MvccHeap::with_commit_path(
        db,
        IsolationLevel::Snapshot,
        path,
    ));
    let pin = heap.snapshot();
    let next_txn = AtomicU64::new(1);
    for round in 0..WARMUP_VERSIONS {
        for &oid in &oids {
            let txn = TxnId(next_txn.fetch_add(1, Ordering::Relaxed));
            heap.begin(txn);
            for &field in &fields {
                heap.write(txn, oid, field, Value::Int(round as i64))
                    .unwrap();
            }
            heap.commit(txn).unwrap();
        }
    }
    Fixture {
        heap,
        oids,
        fields,
        _pin: pin,
        next_txn,
    }
}

/// One cell: `threads` readers × `reads_per_thread` snapshot reads over
/// the hot set, optionally against a background version-churning
/// writer. Returns `(reads_per_sec, writer_commits)`.
fn run_cell(
    fx: &Fixture,
    threads: usize,
    reads_per_thread: usize,
    with_writer: bool,
) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let writer_commits = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        if with_writer {
            let heap = Arc::clone(&fx.heap);
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&writer_commits);
            let oids = fx.oids.clone();
            let fields = fx.fields.clone();
            let next_txn = &fx.next_txn;
            s.spawn(move || {
                let mut round = WARMUP_VERSIONS as i64;
                while !stop.load(Ordering::Relaxed) {
                    for &oid in &oids {
                        let txn = TxnId(next_txn.fetch_add(1, Ordering::Relaxed));
                        heap.begin(txn);
                        for &field in &fields {
                            heap.write(txn, oid, field, Value::Int(round)).unwrap();
                        }
                        heap.commit(txn).unwrap();
                        commits.fetch_add(1, Ordering::Relaxed);
                    }
                    round += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for t in 0..threads {
            let heap = Arc::clone(&fx.heap);
            let oids = fx.oids.clone();
            let fields = fx.fields.clone();
            readers.push(s.spawn(move || {
                // One registered snapshot per reader: the sweep measures
                // the read path, not begin/commit traffic.
                let snap = heap.snapshot();
                let mut idx = t; // offset readers so they spread over the hot set
                for _ in 0..reads_per_thread {
                    let oid = oids[idx % oids.len()];
                    let field = fields[(idx / oids.len()) % fields.len()];
                    let v = snap.read(oid, field).unwrap();
                    assert!(matches!(v, Value::Int(_)));
                    idx = idx.wrapping_add(1);
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total_reads = (threads * reads_per_thread) as f64;
    (
        if elapsed > 0.0 {
            total_reads / elapsed
        } else {
            0.0
        },
        writer_commits.load(Ordering::Relaxed),
    )
}

const VARIANTS: [(&str, CommitPath); 2] = [
    ("mvcc", CommitPath::Sharded),
    ("mvcc/latched", CommitPath::CoarseBaseline),
];

fn main() {
    let reads_per_thread = txns_per_cell(200_000);
    let threads_list = bench_threads(&[1, 2, 4, 8, 16]);
    println!("read-path scaling: {reads_per_thread} snapshot reads per reader thread over");
    println!(
        "{HOT_OBJECTS} hot objects x {FIELDS} fields ({WARMUP_VERSIONS} committed versions each) —"
    );
    println!("latch-free copy-on-write reads (sharded) vs the seed's latched reader");
    println!("(coarse-baseline), pure readers and readers + 1 version-churning writer\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &threads in &threads_list {
        for with_writer in [false, true] {
            for (label, path) in VARIANTS {
                let fx = fixture(path);
                fx.heap.stats.reset();
                let (reads_per_sec, writer_commits) =
                    run_cell(&fx, threads, reads_per_thread, with_writer);
                let m = fx.heap.stats.snapshot();
                if path == CommitPath::Sharded {
                    // The acceptance check: with warmed, GC-pinned
                    // chains, every read is answered from the chains
                    // alone — the hit path never took a latch or a
                    // base-store lock.
                    assert_eq!(
                        m.read_base_loads, 0,
                        "{label}: a chain hit touched the base store"
                    );
                }
                assert_eq!(
                    m.read_chain_hits,
                    (threads * reads_per_thread) as u64,
                    "{label}: every read accounted for as a chain hit"
                );
                rows.push(vec![
                    threads.to_string(),
                    label.to_string(),
                    if with_writer { "1" } else { "0" }.to_string(),
                    format!("{reads_per_sec:.0}"),
                    m.read_chain_hits.to_string(),
                    m.read_base_loads.to_string(),
                    m.read_retries.to_string(),
                    writer_commits.to_string(),
                ]);
                json.push(json_object(&[
                    ("experiment", JsonVal::from("read_scaling")),
                    ("scheme", JsonVal::from(label)),
                    (
                        "read_path",
                        JsonVal::from(match path {
                            CommitPath::Sharded => "latch-free",
                            CommitPath::CoarseBaseline => "shard-latched",
                        }),
                    ),
                    ("threads", JsonVal::from(threads)),
                    ("writers", JsonVal::from(usize::from(with_writer))),
                    ("reads", JsonVal::from(threads * reads_per_thread)),
                    ("reads_per_sec", JsonVal::from(reads_per_sec)),
                    ("chain_hits", JsonVal::from(m.read_chain_hits)),
                    ("base_loads", JsonVal::from(m.read_base_loads)),
                    ("read_retries", JsonVal::from(m.read_retries)),
                    ("pin_retries", JsonVal::from(m.read_pin_retries)),
                    ("writer_commits", JsonVal::from(writer_commits)),
                ]));
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "scheme",
                "writers",
                "reads/s",
                "chain hits",
                "base loads",
                "read retries",
                "writer commits",
            ],
            &rows
        )
    );
    println!("shape: sharded reads scale with threads (zero latches, zero base-store");
    println!("locks — base loads is asserted 0); the latched baseline pays shard-mutex");
    println!("contention, steepest with the writer churning the same shards.");
    match write_bench_json("BENCH_read_scaling.json", &json) {
        Ok(path) => println!("\nmachine-readable results: {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_read_scaling.json: {e}"),
    }
}
