//! Experiment E9 — read-path scaling: what reader latch freedom buys.
//!
//! N reader threads hammer snapshot reads over a hot set of versioned
//! objects, at rising thread counts, under the two read-path
//! configurations the heap retains:
//!
//! * **sharded** (production): latch-free reads over the copy-on-write
//!   chains — a reader pins the reclamation clock (two atomic ops),
//!   loads two published pointers, and walks the records; a chain hit
//!   never takes a mutex, an `RwLock`, or a base-store access.
//! * **coarse-baseline** (the seed's reader): every read holds the
//!   per-OID chain-shard latch across its walk, so readers contend
//!   with each other and with writers on the shard mutexes.
//!
//! Each sweep runs twice: pure readers, and readers with one background
//! writer thread churning versions on the hot set (the case latch-free
//! reads are really for — under the latched baseline every commit flip
//! collides with every reader of the same shard).
//!
//! Shape: sharded reads/sec scales with threads where the baseline
//! flattens on shard-latch contention, and the sharded run's
//! `read_base_loads` stays **zero** — every read was answered entirely
//! from the chains (this one is asserted: it is the acceptance check
//! that the hit path is latch-free end to end; timing shapes are not
//! asserted — CI smoke runs are too small — but recorded in the JSON).
//!
//! The sweep cells run with observability **disabled** — that is the
//! point: the uninstrumented read path is what the zero-regression
//! guarantee covers (the `obs_overhead` smoke mode bounds the enabled
//! cost at ≤5%). One final *instrumented* cell reruns the max-thread
//! readers + writer storm with observability on and records the churn
//! writer's commit-path latency quantiles, so the committed JSON
//! carries histogram evidence like every other `BENCH_*.json`.
//!
//! `FINECC_BENCH_TXNS` overrides the per-thread read count and
//! `FINECC_BENCH_THREADS` the thread list (the CI bench-smoke job sets
//! both). The run emits `BENCH_read_scaling.json` (into
//! `FINECC_BENCH_JSON_DIR`, default the workspace root) so the perf
//! trajectory is tracked across PRs.

use finecc_bench::{
    bench_threads, json_object, latency_pairs, txns_per_cell, write_bench_json, JsonVal,
};
use finecc_model::{FieldId, FieldType, Oid, SchemaBuilder, TxnId, Value};
use finecc_mvcc::{CommitPath, IsolationLevel, MvccHeap};
use finecc_obs::{LatencySummary, Obs, ObsConfig, Phase};
use finecc_sim::render_table;
use finecc_store::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hot objects the readers cycle over.
const HOT_OBJECTS: usize = 16;
/// Fields per object (readers cycle over these too).
const FIELDS: usize = 4;
/// Committed versions stacked on every field before the sweep starts.
const WARMUP_VERSIONS: u64 = 3;

struct Fixture {
    heap: Arc<MvccHeap>,
    oids: Vec<Oid>,
    fields: Vec<FieldId>,
    /// Keeps the GC horizon at 0 so the warmed chains are never
    /// reclaimed: every read of the sweep is a chain hit by
    /// construction.
    _pin: finecc_mvcc::Snapshot,
    next_txn: AtomicU64,
}

fn fixture(path: CommitPath) -> Fixture {
    fixture_obs(path, Arc::new(Obs::disabled()))
}

fn fixture_obs(path: CommitPath, obs: Arc<Obs>) -> Fixture {
    let mut b = SchemaBuilder::new();
    {
        let c = b.class("hot");
        for f in 0..FIELDS {
            c.field(&format!("f{f}"), FieldType::Int);
        }
    }
    let schema = Arc::new(b.finish().unwrap());
    let class = schema.class_by_name("hot").unwrap();
    let fields: Vec<FieldId> = (0..FIELDS)
        .map(|f| schema.resolve_field(class, &format!("f{f}")).unwrap())
        .collect();
    let db = Arc::new(Database::new(Arc::clone(&schema)));
    let oids: Vec<Oid> = (0..HOT_OBJECTS).map(|_| db.create(class)).collect();
    let heap =
        Arc::new(MvccHeap::with_commit_path(db, IsolationLevel::Snapshot, path).with_obs(obs));
    let pin = heap.snapshot();
    let next_txn = AtomicU64::new(1);
    for round in 0..WARMUP_VERSIONS {
        for &oid in &oids {
            let txn = TxnId(next_txn.fetch_add(1, Ordering::Relaxed));
            heap.begin(txn);
            for &field in &fields {
                heap.write(txn, oid, field, Value::Int(round as i64))
                    .unwrap();
            }
            heap.commit(txn).unwrap();
        }
    }
    Fixture {
        heap,
        oids,
        fields,
        _pin: pin,
        next_txn,
    }
}

/// One cell: `threads` readers × `reads_per_thread` snapshot reads over
/// the hot set, optionally against a background version-churning
/// writer. Returns `(reads_per_sec, writer_commits)`.
fn run_cell(
    fx: &Fixture,
    threads: usize,
    reads_per_thread: usize,
    with_writer: bool,
) -> (f64, u64) {
    let stop = Arc::new(AtomicBool::new(false));
    let writer_commits = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    std::thread::scope(|s| {
        if with_writer {
            let heap = Arc::clone(&fx.heap);
            let stop = Arc::clone(&stop);
            let commits = Arc::clone(&writer_commits);
            let oids = fx.oids.clone();
            let fields = fx.fields.clone();
            let next_txn = &fx.next_txn;
            s.spawn(move || {
                let mut round = WARMUP_VERSIONS as i64;
                while !stop.load(Ordering::Relaxed) {
                    for &oid in &oids {
                        let txn = TxnId(next_txn.fetch_add(1, Ordering::Relaxed));
                        heap.begin(txn);
                        for &field in &fields {
                            heap.write(txn, oid, field, Value::Int(round)).unwrap();
                        }
                        heap.commit(txn).unwrap();
                        commits.fetch_add(1, Ordering::Relaxed);
                    }
                    round += 1;
                }
            });
        }
        let mut readers = Vec::new();
        for t in 0..threads {
            let heap = Arc::clone(&fx.heap);
            let oids = fx.oids.clone();
            let fields = fx.fields.clone();
            readers.push(s.spawn(move || {
                // One registered snapshot per reader: the sweep measures
                // the read path, not begin/commit traffic.
                let snap = heap.snapshot();
                let mut idx = t; // offset readers so they spread over the hot set
                for _ in 0..reads_per_thread {
                    let oid = oids[idx % oids.len()];
                    let field = fields[(idx / oids.len()) % fields.len()];
                    let v = snap.read(oid, field).unwrap();
                    assert!(matches!(v, Value::Int(_)));
                    idx = idx.wrapping_add(1);
                }
            }));
        }
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total_reads = (threads * reads_per_thread) as f64;
    (
        if elapsed > 0.0 {
            total_reads / elapsed
        } else {
            0.0
        },
        writer_commits.load(Ordering::Relaxed),
    )
}

const VARIANTS: [(&str, CommitPath); 2] = [
    ("mvcc", CommitPath::Sharded),
    ("mvcc/latched", CommitPath::CoarseBaseline),
];

/// The `obs_overhead` smoke mode (CI): measures the latch-free read
/// rate with observability fully disabled vs the **full live telemetry
/// plane** enabled — histograms with rotating windows, decaying
/// contention scores, a metrics registry pulling the live handle, and
/// a background sampler streaming JSONL rows throughout the measured
/// rounds — and asserts the enabled rate within 5% of the disabled
/// one. The read path carries no histogram or registry probe at all
/// (the registry is pull-based: the sampler does the work on its own
/// thread), so the bound holds with margin; the disabled run is also
/// asserted to have recorded **nothing** — the zero-regression
/// guarantee the heap's module docs promise.
fn obs_overhead_smoke(reads_per_thread: usize) {
    const THREADS: usize = 4;
    const ROUNDS: usize = 5;
    let best = |obs: &Arc<Obs>| -> f64 {
        let fx = fixture_obs(CommitPath::Sharded, Arc::clone(obs));
        (0..ROUNDS)
            .map(|_| run_cell(&fx, THREADS, reads_per_thread, false).0)
            .fold(0.0_f64, f64::max)
    };
    let off_obs = Arc::new(Obs::disabled());
    let on_obs = Arc::new(Obs::new(ObsConfig::enabled()));
    // The enabled run carries the whole live plane: a registry pulling
    // the live handle and a sampler appending rows to a scratch JSONL
    // at a CI-realistic interval for the duration of the measurement.
    let reg = Arc::new(finecc_obs::MetricsRegistry::new());
    {
        let live = Arc::clone(&on_obs);
        reg.register_fn(&[("source", "live")], move |c| live.collect_metrics(c));
    }
    let sampler_path = std::env::temp_dir().join(format!(
        "finecc-obs-overhead-{}.metrics.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&sampler_path);
    let sampler = reg.start_sampler(&sampler_path, std::time::Duration::from_millis(50));
    // Interleave a warmup of each before the measured rounds.
    let _ = best(&off_obs);
    let off = best(&off_obs);
    let on = best(&on_obs);
    let sampled = sampler.stop().expect("sampler exits cleanly");
    let rows = std::fs::read_to_string(&sampled)
        .expect("sampler output readable")
        .lines()
        .count();
    assert!(rows >= 2, "sampler left a time series ({rows} rows)");
    let _ = std::fs::remove_file(&sampled);
    for phase in Phase::ALL {
        assert_eq!(
            off_obs.phase_summary(phase).count,
            0,
            "disabled observability recorded a {} sample",
            phase.name()
        );
    }
    assert_eq!(
        off_obs.contention_totals(),
        [0; 4],
        "disabled observability attributed contention"
    );
    assert!(
        on_obs.phase_summary(Phase::CommitTotal).count > 0,
        "enabled observability recorded nothing (fixture commits missing)"
    );
    let ratio = if off > 0.0 { on / off } else { 1.0 };
    println!(
        "obs_overhead smoke: {THREADS} readers x {reads_per_thread} reads, best of {ROUNDS}\n\
         obs off : {off:>12.0} reads/s\n\
         obs on  : {on:>12.0} reads/s   (windowed histograms + decaying contention\n\
                                         + registry + sampler, {rows} JSONL rows)\n\
         ratio   : {ratio:.3}"
    );
    assert!(
        ratio >= 0.95,
        "enabled observability cost the read path more than 5% ({ratio:.3})"
    );
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("obs_overhead") {
        // Floor the per-thread read count: CI smoke sets
        // FINECC_BENCH_TXNS very low, but a throughput *ratio* needs
        // enough reads per round to rise above scheduler noise.
        obs_overhead_smoke(txns_per_cell(200_000).max(50_000));
        return;
    }
    let reads_per_thread = txns_per_cell(200_000);
    let threads_list = bench_threads(&[1, 2, 4, 8, 16]);
    println!("read-path scaling: {reads_per_thread} snapshot reads per reader thread over");
    println!(
        "{HOT_OBJECTS} hot objects x {FIELDS} fields ({WARMUP_VERSIONS} committed versions each) —"
    );
    println!("latch-free copy-on-write reads (sharded) vs the seed's latched reader");
    println!("(coarse-baseline), pure readers and readers + 1 version-churning writer\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &threads in &threads_list {
        for with_writer in [false, true] {
            for (label, path) in VARIANTS {
                let fx = fixture(path);
                // The sweep measures the uninstrumented read path: the
                // heap's default handle is disabled, and a disabled
                // handle records nothing (the obs_overhead smoke mode
                // bounds the enabled cost).
                assert!(!fx.heap.obs().is_enabled());
                fx.heap.stats.reset();
                let (reads_per_sec, writer_commits) =
                    run_cell(&fx, threads, reads_per_thread, with_writer);
                let m = fx.heap.stats.snapshot();
                if path == CommitPath::Sharded {
                    // The acceptance check: with warmed, GC-pinned
                    // chains, every read is answered from the chains
                    // alone — the hit path never took a latch or a
                    // base-store lock.
                    assert_eq!(
                        m.read_base_loads, 0,
                        "{label}: a chain hit touched the base store"
                    );
                }
                assert_eq!(
                    m.read_chain_hits,
                    (threads * reads_per_thread) as u64,
                    "{label}: every read accounted for as a chain hit"
                );
                rows.push(vec![
                    threads.to_string(),
                    label.to_string(),
                    if with_writer { "1" } else { "0" }.to_string(),
                    format!("{reads_per_sec:.0}"),
                    m.read_chain_hits.to_string(),
                    m.read_base_loads.to_string(),
                    m.read_retries.to_string(),
                    writer_commits.to_string(),
                ]);
                json.push(json_object(&[
                    ("experiment", JsonVal::from("read_scaling")),
                    ("scheme", JsonVal::from(label)),
                    (
                        "read_path",
                        JsonVal::from(match path {
                            CommitPath::Sharded => "latch-free",
                            CommitPath::CoarseBaseline => "shard-latched",
                        }),
                    ),
                    ("threads", JsonVal::from(threads)),
                    ("writers", JsonVal::from(usize::from(with_writer))),
                    ("reads", JsonVal::from(threads * reads_per_thread)),
                    ("reads_per_sec", JsonVal::from(reads_per_sec)),
                    ("chain_hits", JsonVal::from(m.read_chain_hits)),
                    ("base_loads", JsonVal::from(m.read_base_loads)),
                    ("read_retries", JsonVal::from(m.read_retries)),
                    // The uniform counter block all BENCH_*.json share.
                    ("ts_skips", JsonVal::from(m.ts_skips)),
                    ("watermark_waits", JsonVal::from(m.watermark_waits)),
                    ("read_pin_retries", JsonVal::from(m.read_pin_retries)),
                    ("cow_reclaimed", JsonVal::from(m.cow_reclaimed)),
                    ("writer_commits", JsonVal::from(writer_commits)),
                ]));
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "scheme",
                "writers",
                "reads/s",
                "chain hits",
                "base loads",
                "read retries",
                "writer commits",
            ],
            &rows
        )
    );
    // One extra instrumented cell, so the committed artifact carries
    // histogram quantiles like every other BENCH_*.json: the max-thread
    // readers + writer storm reruns on the latch-free path with
    // observability enabled. The quantiles are the churn writer's
    // commit-path latency under peak reader load — reads record no
    // histogram samples by design (the sweep above asserts the read
    // path stays uninstrumented; the obs_overhead mode bounds the
    // enabled cost).
    let max_threads = threads_list.iter().copied().max().unwrap_or(1);
    let obs = Arc::new(Obs::new(ObsConfig::enabled()));
    let fx = fixture_obs(CommitPath::Sharded, Arc::clone(&obs));
    fx.heap.stats.reset();
    obs.reset(); // drop the warmup commits from the histograms
    let (reads_per_sec, writer_commits) = run_cell(&fx, max_threads, reads_per_thread, true);
    let commit_lat = obs.phase_summary(Phase::CommitTotal);
    assert_eq!(
        commit_lat.count, writer_commits,
        "every writer commit recorded a commit-path latency sample"
    );
    let m = fx.heap.stats.snapshot();
    let mut pairs = vec![
        ("experiment", JsonVal::from("read_scaling_instrumented")),
        ("scheme", JsonVal::from("mvcc")),
        ("read_path", JsonVal::from("latch-free")),
        ("threads", JsonVal::from(max_threads)),
        ("writers", JsonVal::from(1usize)),
        ("reads", JsonVal::from(max_threads * reads_per_thread)),
        ("reads_per_sec", JsonVal::from(reads_per_sec)),
        ("chain_hits", JsonVal::from(m.read_chain_hits)),
        ("base_loads", JsonVal::from(m.read_base_loads)),
        ("read_retries", JsonVal::from(m.read_retries)),
        ("ts_skips", JsonVal::from(m.ts_skips)),
        ("watermark_waits", JsonVal::from(m.watermark_waits)),
        ("read_pin_retries", JsonVal::from(m.read_pin_retries)),
        ("cow_reclaimed", JsonVal::from(m.cow_reclaimed)),
        ("writer_commits", JsonVal::from(writer_commits)),
    ];
    pairs.extend(latency_pairs(commit_lat));
    json.push(json_object(&pairs));
    println!(
        "instrumented cell ({max_threads} readers + 1 writer, obs on): writer commit\np50 {:.0} µs  p99 {:.0} µs  max {:.0} µs over {} commits — the latency row in\nBENCH_read_scaling.json (sweep cells above run obs-off by design)\n",
        LatencySummary::us(commit_lat.p50),
        LatencySummary::us(commit_lat.p99),
        LatencySummary::us(commit_lat.max),
        commit_lat.count
    );
    println!("shape: sharded reads scale with threads (zero latches, zero base-store");
    println!("locks — base loads is asserted 0); the latched baseline pays shard-mutex");
    println!("contention, steepest with the writer churning the same shards.");
    match write_bench_json("BENCH_read_scaling.json", &json) {
        Ok(path) => println!("\nmachine-readable results: {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_read_scaling.json: {e}"),
    }
}
