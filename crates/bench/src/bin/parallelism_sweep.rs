//! Experiment E7b — three sweeps around the admission/isolation
//! trade-off and the commit path's multicore scalability:
//!
//! **Compile-time conflict density.** Across random schemas, what
//! fraction of method pairs conflict under the generated commutativity
//! matrices vs under reader/writer classification vs under mvcc's
//! field-granularity first-updater-wins rule? Shape: density(mvcc) ≤
//! density(tav) ≤ density(rw) everywhere. The tav/rw gap widens as
//! classes get more fields (more room for disjoint writers) and as the
//! write probability grows (RW collapses everything to "writer"). mvcc
//! refines further: snapshot reads exempt every reader-vs-writer pair,
//! leaving only field-level write-write overlaps — the compile-time
//! upper bound on its optimistic abort rate. The price of the extra
//! admissions is isolation strength (snapshot isolation, not
//! serializability).
//!
//! **The serializability tax.** `mvcc-ssi` buys serializability back at
//! run time with commit-time dangerous-structure validation, so the same
//! executed workload quantifies what that costs *relative to plain SI*
//! (extra validation aborts + retries) and *relative to the serializable
//! lock schemes* (which pay in lock traffic and blocking instead).
//! Shape: ssi aborts ≥ 0 = mvcc's validation aborts; both mvcc variants
//! issue zero lock requests; the lock schemes pay per-message /
//! per-field lock traffic for the same guarantee.
//!
//! **Commit-path scaling.** A write-heavy workload executed at rising
//! thread counts (env-tunable, 16+ by default) under three commit
//! configurations: the sharded mvcc path (atomic timestamp clock,
//! per-shard chain flips, ordered-watermark publication), the retained
//! coarse single-mutex baseline (the seed's commit lock, kept solely
//! for this before/after measurement), and sharded `mvcc-ssi` (the
//! serializability tax at scale). Shape: sharded ≥ coarse at high
//! thread counts — the coarse path serializes every writer commit
//! behind one mutex, which is exactly the choke point the sharding
//! removed.
//!
//! `FINECC_BENCH_TXNS` overrides the executed-workload transaction
//! count and `FINECC_BENCH_THREADS` the scaling sweep's thread list
//! (the CI bench-smoke job sets both). The run also emits
//! `BENCH_parallelism.json` (into `FINECC_BENCH_JSON_DIR`, default the
//! working directory) so the perf trajectory is tracked across PRs.

use finecc_bench::{
    bench_threads, json_object, latency_pairs, mvcc_counter_pairs, obs_from_env,
    register_report_metrics, txns_per_cell, write_artifact, write_bench_json, JsonVal,
};
use finecc_mvcc::{CommitPath, IsolationLevel};
use finecc_obs::MetricsRegistry;
use finecc_runtime::{MvccScheme, SchemeKind};
use finecc_sim::workload::{
    generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
};
use finecc_sim::{render_table, run_concurrent, ExecConfig};

/// Conflict densities (fraction of ordered method pairs that do NOT
/// commute) per scheme, over all classes of the schema.
fn densities(cfg: &SchemaGenConfig) -> (f64, f64, f64) {
    let env = generate_env(cfg);
    let mut pairs = 0u64;
    let mut tav_conflicts = 0u64;
    let mut rw_conflicts = 0u64;
    let mut mvcc_conflicts = 0u64;
    for ci in env.schema.classes() {
        let t = env.compiled.class(ci.id);
        let n = t.mode_count();
        for i in 0..n {
            let wi: Vec<_> = t.tav(i).write_fields().collect();
            for j in 0..n {
                pairs += 1;
                if !t.commute(i, j) {
                    tav_conflicts += 1;
                }
                let rw_compat = t.tav(i).is_read_only() && t.tav(j).is_read_only();
                if !rw_compat {
                    rw_conflicts += 1;
                }
                // Field-level first-updater-wins: only overlapping write
                // sets conflict; readers never do.
                if t.tav(j).write_fields().any(|f| wi.contains(&f)) {
                    mvcc_conflicts += 1;
                }
            }
        }
    }
    if pairs == 0 {
        return (0.0, 0.0, 0.0);
    }
    (
        tav_conflicts as f64 / pairs as f64,
        rw_conflicts as f64 / pairs as f64,
        mvcc_conflicts as f64 / pairs as f64,
    )
}

fn compile_time_sweep() {
    println!("conflict density of method pairs: generated matrices vs RW collapse vs mvcc");
    println!("(40 classes, averaged over 5 seeds per point; admission is identical for");
    println!("mvcc and mvcc-ssi — the ssi tax is run-time, see the second table)\n");
    let mut rows = Vec::new();
    for write_prob in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        for fields in [2usize, 6] {
            let mut tav_sum = 0.0;
            let mut rw_sum = 0.0;
            let mut mvcc_sum = 0.0;
            let runs = 5;
            for seed in 0..runs {
                let cfg = SchemaGenConfig {
                    classes: 40,
                    write_prob,
                    fields_per_class: (fields, fields),
                    seed,
                    ..SchemaGenConfig::default()
                };
                let (t, r, m) = densities(&cfg);
                tav_sum += t;
                rw_sum += r;
                mvcc_sum += m;
            }
            let (tav, rw, mvcc) = (
                tav_sum / runs as f64,
                rw_sum / runs as f64,
                mvcc_sum / runs as f64,
            );
            assert!(tav <= rw + 1e-9, "TAV conflict density can never exceed RW");
            assert!(
                mvcc <= tav + 1e-9,
                "a field write-write overlap is always a TAV conflict"
            );
            rows.push(vec![
                format!("{write_prob:.1}"),
                fields.to_string(),
                format!("{:.1}%", tav * 100.0),
                format!("{:.1}%", rw * 100.0),
                format!("{:.1}%", mvcc * 100.0),
                format!("{:.2}x", if tav > 0.0 { rw / tav } else { f64::NAN }),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "write prob",
                "fields/class",
                "tav conflicts",
                "rw conflicts",
                "mvcc conflicts",
                "gain"
            ],
            &rows
        )
    );
    println!("shape check: mvcc ≤ tav ≤ rw everywhere (mvcc trades isolation strength).\n");
}

/// The three commit configurations of the scaling sweep.
const SCALING_VARIANTS: [(&str, IsolationLevel, CommitPath); 3] = [
    ("mvcc", IsolationLevel::Snapshot, CommitPath::Sharded),
    (
        "mvcc/coarse",
        IsolationLevel::Snapshot,
        CommitPath::CoarseBaseline,
    ),
    (
        "mvcc-ssi",
        IsolationLevel::Serializable,
        CommitPath::Sharded,
    ),
];

fn commit_scaling_sweep(json: &mut Vec<String>, reg: &MetricsRegistry) {
    let txns = txns_per_cell(1500);
    let threads_list = bench_threads(&[1, 2, 4, 8, 16]);
    println!("commit-path scaling: write-heavy workload ({txns} txns) by thread count —");
    println!("sharded commit (atomic clock + per-shard flips + ordered watermark) vs the");
    println!("retained coarse single-mutex baseline vs mvcc-ssi (serializability tax)\n");
    let mut rows = Vec::new();
    for &threads in &threads_list {
        for (label, isolation, path) in SCALING_VARIANTS {
            let env = generate_env(&SchemaGenConfig {
                classes: 12,
                seed: 73,
                write_prob: 0.9,
                self_call_prob: 0.2,
                ..SchemaGenConfig::default()
            })
            // One fresh observability window per cell: histograms and
            // counters cover exactly this (threads, variant) point.
            .with_obs(obs_from_env());
            populate_random(&env, 6);
            let wl = generate_workload(
                &env,
                &WorkloadConfig {
                    txns,
                    hot_frac: 0.25,
                    hot_set: 10,
                    seed: 19,
                    ..WorkloadConfig::default()
                },
            );
            let scheme = MvccScheme::with_commit_path(env, isolation, path);
            let report = run_concurrent(
                &scheme,
                &wl.ops,
                ExecConfig {
                    threads,
                    max_retries: 500,
                },
            );
            assert_eq!(report.failed, 0, "{label}: non-retryable failure");
            let throughput = report.throughput();
            rows.push(vec![
                threads.to_string(),
                label.to_string(),
                report.committed.to_string(),
                report.retries.to_string(),
                report.ww_conflicts().to_string(),
                report.ssi_aborts().to_string(),
                format!("{throughput:.0}"),
            ]);
            let mut pairs = vec![
                ("experiment", JsonVal::from("commit_scaling")),
                ("scheme", JsonVal::from(label)),
                (
                    "commit_path",
                    JsonVal::from(match path {
                        CommitPath::Sharded => "sharded",
                        CommitPath::CoarseBaseline => "coarse-baseline",
                    }),
                ),
                ("isolation", JsonVal::from(isolation.name())),
                ("threads", JsonVal::from(threads)),
                ("txns", JsonVal::from(txns)),
                ("committed", JsonVal::from(report.committed)),
                ("retries", JsonVal::from(report.retries)),
                ("exhausted", JsonVal::from(report.exhausted)),
                ("ww_conflicts", JsonVal::from(report.ww_conflicts())),
                ("ssi_aborts", JsonVal::from(report.ssi_aborts())),
                ("txns_per_sec", JsonVal::from(throughput)),
                (
                    "elapsed_ms",
                    JsonVal::from(report.elapsed.as_secs_f64() * 1e3),
                ),
            ];
            pairs.extend(mvcc_counter_pairs(&report));
            pairs.extend(latency_pairs(report.txn_latency()));
            json.push(json_object(&pairs));
            let threads_label = threads.to_string();
            register_report_metrics(
                reg,
                &[
                    ("experiment", "commit_scaling"),
                    ("scheme", label),
                    ("threads", &threads_label),
                ],
                &report,
            );
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "threads",
                "scheme",
                "committed",
                "retries",
                "ww conflicts",
                "ssi aborts",
                "txn/s",
            ],
            &rows
        )
    );
    println!("shape: the sharded path scales with threads where the coarse baseline");
    println!("flattens behind its commit mutex; mvcc-ssi tracks mvcc minus the");
    println!("validation-abort tax. (Timing shapes are not asserted — CI smoke runs");
    println!("are too small to be stable — but both are recorded in the JSON.)\n");
}

fn serializability_tax_sweep(json: &mut Vec<String>, reg: &MetricsRegistry) {
    let txns = txns_per_cell(500);
    println!("the serializability tax: one mixed workload ({txns} txns, 4 threads,");
    println!("medium skew) under all six schemes — what each isolation guarantee costs\n");
    let mut rows = Vec::new();
    for kind in SchemeKind::ALL {
        let env = generate_env(&SchemaGenConfig {
            classes: 8,
            seed: 41,
            write_prob: 0.5,
            self_call_prob: 0.3,
            ..SchemaGenConfig::default()
        })
        .with_obs(obs_from_env());
        populate_random(&env, 4);
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns,
                hot_frac: 0.4,
                hot_set: 6,
                seed: 11,
                ..WorkloadConfig::default()
            },
        );
        let scheme = kind.build(env);
        let report = run_concurrent(
            scheme.as_ref(),
            &wl.ops,
            ExecConfig {
                threads: 4,
                max_retries: 200,
            },
        );
        assert_eq!(report.failed, 0, "{kind}: non-retryable failure");
        let isolation = match kind.isolation() {
            Some(level) => level.to_string(),
            None => "serializable (2PL)".to_string(),
        };
        rows.push(vec![
            kind.name().to_string(),
            isolation.clone(),
            report.committed.to_string(),
            report.retries.to_string(),
            report.lock.requests.to_string(),
            report.lock.blocks.to_string(),
            report.ww_conflicts().to_string(),
            report.ssi_aborts().to_string(),
            format!("{:.0}", report.throughput()),
        ]);
        let mut pairs = vec![
            ("experiment", JsonVal::from("serializability_tax")),
            ("scheme", JsonVal::from(kind.name())),
            ("isolation", JsonVal::from(isolation)),
            ("threads", JsonVal::from(4usize)),
            ("txns", JsonVal::from(txns)),
            ("committed", JsonVal::from(report.committed)),
            ("retries", JsonVal::from(report.retries)),
            ("lock_requests", JsonVal::from(report.lock.requests)),
            ("lock_blocks", JsonVal::from(report.lock.blocks)),
            ("ww_conflicts", JsonVal::from(report.ww_conflicts())),
            ("ssi_aborts", JsonVal::from(report.ssi_aborts())),
            ("txns_per_sec", JsonVal::from(report.throughput())),
        ];
        pairs.extend(mvcc_counter_pairs(&report));
        pairs.extend(latency_pairs(report.txn_latency()));
        json.push(json_object(&pairs));
        register_report_metrics(
            reg,
            &[
                ("experiment", "serializability_tax"),
                ("scheme", kind.name()),
            ],
            &report,
        );
    }
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "isolation",
                "committed",
                "retries",
                "lock reqs",
                "blocks",
                "ww conflicts",
                "ssi aborts",
                "txn/s",
            ],
            &rows
        )
    );
    println!("shapes: the lock schemes pay for serializability in lock traffic and");
    println!("blocking; mvcc pays nothing and gives only snapshot isolation; mvcc-ssi");
    println!("pays a run-time tax of validation aborts + retries — still zero locks.");
}

fn main() {
    compile_time_sweep();
    let mut json = Vec::new();
    // One registry across both executed sweeps: each cell freezes its
    // report under its sweep/scheme (and thread-count) labels, and the
    // optional background sampler streams rows while the sweeps run.
    let reg = std::sync::Arc::new(MetricsRegistry::new());
    let _sampler = finecc_obs::sampler_from_env(&reg);
    commit_scaling_sweep(&mut json, &reg);
    serializability_tax_sweep(&mut json, &reg);
    match write_bench_json("BENCH_parallelism.json", &json) {
        Ok(path) => println!("\nmachine-readable results: {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_parallelism.json: {e}"),
    }
    match write_artifact("BENCH_parallelism.prom", &reg.render_prometheus()) {
        Ok(path) => println!("prometheus snapshot: {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_parallelism.prom: {e}"),
    }
}
