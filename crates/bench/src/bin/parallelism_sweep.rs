//! Experiment E7b — compile-time conflict density sweep: across random
//! schemas, what fraction of method pairs conflict under the generated
//! commutativity matrices vs under reader/writer classification vs under
//! mvcc's object-granularity first-updater-wins rule?
//!
//! Shape: density(mvcc) ≤ density(tav) ≤ density(rw) everywhere. The
//! tav/rw gap widens as classes get more fields (more room for disjoint
//! writers) and as the write probability grows (RW collapses everything
//! to "writer"). mvcc refines further: snapshot reads exempt every
//! reader-vs-writer pair, leaving only field-level write-write overlaps —
//! the compile-time upper bound on its optimistic abort rate. The price
//! of the extra admissions is isolation strength (snapshot isolation,
//! not serializability).

use finecc_sim::workload::{generate_env, SchemaGenConfig};

/// Conflict densities (fraction of ordered method pairs that do NOT
/// commute) per scheme, over all classes of the schema.
fn densities(cfg: &SchemaGenConfig) -> (f64, f64, f64) {
    let env = generate_env(cfg);
    let mut pairs = 0u64;
    let mut tav_conflicts = 0u64;
    let mut rw_conflicts = 0u64;
    let mut mvcc_conflicts = 0u64;
    for ci in env.schema.classes() {
        let t = env.compiled.class(ci.id);
        let n = t.mode_count();
        for i in 0..n {
            let wi: Vec<_> = t.tav(i).write_fields().collect();
            for j in 0..n {
                pairs += 1;
                if !t.commute(i, j) {
                    tav_conflicts += 1;
                }
                let rw_compat = t.tav(i).is_read_only() && t.tav(j).is_read_only();
                if !rw_compat {
                    rw_conflicts += 1;
                }
                // Field-level first-updater-wins: only overlapping write
                // sets conflict; readers never do.
                if t.tav(j).write_fields().any(|f| wi.contains(&f)) {
                    mvcc_conflicts += 1;
                }
            }
        }
    }
    if pairs == 0 {
        return (0.0, 0.0, 0.0);
    }
    (
        tav_conflicts as f64 / pairs as f64,
        rw_conflicts as f64 / pairs as f64,
        mvcc_conflicts as f64 / pairs as f64,
    )
}

fn main() {
    println!("conflict density of method pairs: generated matrices vs RW collapse vs mvcc");
    println!("(40 classes, averaged over 5 seeds per point)\n");
    let mut rows = Vec::new();
    for write_prob in [0.1f64, 0.3, 0.5, 0.7, 0.9] {
        for fields in [2usize, 6] {
            let mut tav_sum = 0.0;
            let mut rw_sum = 0.0;
            let mut mvcc_sum = 0.0;
            let runs = 5;
            for seed in 0..runs {
                let cfg = SchemaGenConfig {
                    classes: 40,
                    write_prob,
                    fields_per_class: (fields, fields),
                    seed,
                    ..SchemaGenConfig::default()
                };
                let (t, r, m) = densities(&cfg);
                tav_sum += t;
                rw_sum += r;
                mvcc_sum += m;
            }
            let (tav, rw, mvcc) =
                (tav_sum / runs as f64, rw_sum / runs as f64, mvcc_sum / runs as f64);
            assert!(
                tav <= rw + 1e-9,
                "TAV conflict density can never exceed RW"
            );
            assert!(
                mvcc <= tav + 1e-9,
                "a field write-write overlap is always a TAV conflict"
            );
            rows.push(vec![
                format!("{write_prob:.1}"),
                fields.to_string(),
                format!("{:.1}%", tav * 100.0),
                format!("{:.1}%", rw * 100.0),
                format!("{:.1}%", mvcc * 100.0),
                format!("{:.2}x", if tav > 0.0 { rw / tav } else { f64::NAN }),
            ]);
        }
    }
    println!(
        "{}",
        finecc_sim::render_table(
            &[
                "write prob",
                "fields/class",
                "tav conflicts",
                "rw conflicts",
                "mvcc conflicts",
                "gain"
            ],
            &rows
        )
    );
    println!("shape check: mvcc ≤ tav ≤ rw everywhere (mvcc trades isolation strength).");
}
