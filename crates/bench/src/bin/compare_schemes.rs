//! Experiment E12 — the "evaluation table the paper never had": one
//! generated mixed workload (single-instance / some-of-domain /
//! whole-domain transactions with hot-spot skew) executed under all six
//! schemes, side by side, at several contention levels.
//!
//! Shapes: the TAV scheme issues the fewest lock requests at equal
//! admitted concurrency, never escalates, and its blocks/deadlocks track
//! the true (commutativity-aware) conflict rate. RW pays per-message
//! traffic and escalation deadlocks; field locking pays per-field
//! traffic; relational sits between, losing only inheritance-aware
//! parallelism (key-cascade writes). The two MVCC schemes issue **zero**
//! lock requests — their cost shows up instead as optimistic aborts,
//! split into two distinct classes in the second table: ww conflicts
//! (first-updater-wins validation failures, identical machinery at both
//! isolation levels) and, for `mvcc-ssi` only, commit-time SSI
//! validation aborts (dangerous structures) — the price of buying
//! serializability back.
//!
//! A third table measures the **durability tax**: the medium-contention
//! cell re-run with the write-ahead log attached at each
//! [`DurabilityLevel`] — `wal` (async group commit) and `wal-sync`
//! (commit acks after its group fsync) — for one lock scheme and both
//! mvcc schemes. The lock scheme logs through its undo projection, the
//! mvcc schemes through their heap's commit path; both produce the same
//! field-granular record format, so the log-bytes column is directly
//! comparable across scheme families.
//!
//! `FINECC_BENCH_TXNS` overrides the per-cell transaction count (the CI
//! bench-smoke job sets it low so the matrix runs in seconds). The run
//! also emits `BENCH_schemes.json` (into `FINECC_BENCH_JSON_DIR`,
//! default the working directory) so the scheme matrix's perf
//! trajectory is tracked as a machine-readable artifact across PRs.

use finecc_bench::{
    export_trace, json_object, latency_pairs, mvcc_counter_pairs, obs_from_env,
    register_report_metrics, txns_per_cell, write_artifact, write_bench_json, JsonVal,
};
use finecc_obs::{sampler_from_env, ContentionKind, MetricsRegistry};
use finecc_runtime::{DurabilityLevel, SchemeKind};
use finecc_sim::workload::{
    generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
};
use finecc_sim::{render_table, run_concurrent, ExecConfig, ExecReport, Metrics};

/// Top-K rows for the hottest-objects table (and their JSON twins).
fn hot_rows(
    label: &str,
    kind: SchemeKind,
    report: &ExecReport,
    rows: &mut Vec<Vec<String>>,
    json: &mut Vec<String>,
) {
    for (rank, hot) in report.obs.hottest().enumerate() {
        if rank < 3 {
            rows.push(vec![
                label.to_string(),
                kind.name().to_string(),
                (rank + 1).to_string(),
                hot.key.to_string(),
                hot.count(ContentionKind::LockBlock).to_string(),
                hot.count(ContentionKind::WwConflict).to_string(),
                hot.count(ContentionKind::SsiAbort).to_string(),
                hot.count(ContentionKind::ReadRetry).to_string(),
                hot.total().to_string(),
            ]);
        }
        json.push(json_object(&[
            ("experiment", JsonVal::from("hot_objects")),
            ("contention", JsonVal::from(label)),
            ("scheme", JsonVal::from(kind.name())),
            ("rank", JsonVal::from(rank + 1)),
            ("object", JsonVal::from(hot.key.to_string())),
            (
                "lock_blocks",
                JsonVal::from(hot.count(ContentionKind::LockBlock)),
            ),
            (
                "ww_conflicts",
                JsonVal::from(hot.count(ContentionKind::WwConflict)),
            ),
            (
                "ssi_aborts",
                JsonVal::from(hot.count(ContentionKind::SsiAbort)),
            ),
            (
                "read_retries",
                JsonVal::from(hot.count(ContentionKind::ReadRetry)),
            ),
            ("total", JsonVal::from(hot.total())),
        ]));
    }
}

fn main() {
    let txns = txns_per_cell(600);
    let obs = obs_from_env();
    // One registry for the whole matrix: each finished cell freezes its
    // report under (contention, scheme) labels, and one live source
    // tracks the in-flight cell so the optional background sampler
    // (`FINECC_METRICS=<path>.jsonl`) sees the run as it happens. The
    // final snapshot lands next to BENCH_schemes.json as Prometheus
    // text exposition plus a JSON twin.
    let reg = std::sync::Arc::new(MetricsRegistry::new());
    let _sampler = sampler_from_env(&reg);
    {
        let live = std::sync::Arc::clone(&obs);
        reg.register_fn(&[("source", "live")], move |c| live.collect_metrics(c));
    }
    println!("mixed workload, 4 threads, {txns} txns, 10-class schema, by hot-spot skew\n");
    let mut rows = Vec::new();
    let mut mvcc_rows = Vec::new();
    let mut hot_table = Vec::new();
    let mut json = Vec::new();
    for (label, hot_frac, hot_set) in [
        ("low contention", 0.05, 16usize),
        ("medium contention", 0.4, 6),
        ("high contention", 0.8, 2),
    ] {
        for kind in SchemeKind::ALL {
            let env = generate_env(&SchemaGenConfig {
                classes: 10,
                seed: 33,
                write_prob: 0.6,
                self_call_prob: 0.4,
                ..SchemaGenConfig::default()
            });
            populate_random(&env, 4);
            let env = env.with_obs(std::sync::Arc::clone(&obs));
            let wl = generate_workload(
                &env,
                &WorkloadConfig {
                    txns,
                    hot_frac,
                    hot_set,
                    seed: 5,
                    ..WorkloadConfig::default()
                },
            );
            let scheme = kind.build(env);
            let report = run_concurrent(
                scheme.as_ref(),
                &wl.ops,
                ExecConfig {
                    threads: 4,
                    max_retries: 100,
                },
            );
            assert_eq!(report.failed, 0, "{kind}: non-retryable failure");
            if kind != SchemeKind::MvccSsi {
                assert_eq!(report.ssi_aborts(), 0, "{kind}: ssi aborts without ssi");
            }
            let m = Metrics::from_report(format!("{label} / {kind}"), &report);
            rows.push(m.row());
            let mut pairs = vec![
                ("experiment", JsonVal::from("compare_schemes")),
                ("contention", JsonVal::from(label)),
                ("scheme", JsonVal::from(kind.name())),
                (
                    "isolation",
                    JsonVal::from(match kind.isolation() {
                        Some(level) => level.name(),
                        None => "serializable-2pl",
                    }),
                ),
                ("threads", JsonVal::from(4usize)),
                ("txns", JsonVal::from(txns)),
                ("committed", JsonVal::from(report.committed)),
                ("retries", JsonVal::from(report.retries)),
                ("exhausted", JsonVal::from(report.exhausted)),
                ("lock_requests", JsonVal::from(report.lock.requests)),
                ("lock_blocks", JsonVal::from(report.lock.blocks)),
                ("deadlocks", JsonVal::from(report.lock.deadlocks)),
                ("ww_conflicts", JsonVal::from(report.ww_conflicts())),
                ("ssi_aborts", JsonVal::from(report.ssi_aborts())),
                ("read_retries", JsonVal::from(report.read_retries())),
            ];
            pairs.extend(mvcc_counter_pairs(&report));
            pairs.extend(latency_pairs(report.txn_latency()));
            pairs.push(("txns_per_sec", JsonVal::from(report.throughput())));
            json.push(json_object(&pairs));
            hot_rows(label, kind, &report, &mut hot_table, &mut json);
            let contention = label.split_whitespace().next().unwrap_or(label);
            register_report_metrics(
                &reg,
                &[("contention", contention), ("scheme", kind.name())],
                &report,
            );
            // One registry window per cell: the hottest-objects table
            // attributes to this scheme at this contention level only.
            obs.reset();
            if let Some(v) = report.mvcc {
                mvcc_rows.push(vec![
                    label.to_string(),
                    kind.name().to_string(),
                    kind.isolation().expect("mvcc kind").to_string(),
                    v.commits.to_string(),
                    v.aborts.to_string(),
                    v.write_conflicts.to_string(),
                    v.ssi_aborts.to_string(),
                    v.ssi_edges.to_string(),
                    format!("{:.2}", v.mean_chain_len()),
                    v.chain_len_max.to_string(),
                    v.versions_created.to_string(),
                    v.versions_reclaimed.to_string(),
                    v.read_retries.to_string(),
                    v.watermark_waits.to_string(),
                    v.cow_reclaimed.to_string(),
                ]);
            }
        }
    }
    println!("{}", render_table(&Metrics::headers(), &rows));
    println!(
        "mvcc detail (no locks: concurrency costs are optimistic aborts and versions;\n\
         'ssi aborts' is the distinct commit-time validation abort class of mvcc-ssi)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "contention",
                "scheme",
                "isolation",
                "commits",
                "aborts",
                "ww conflicts",
                "ssi aborts",
                "rw edges",
                "mean chain",
                "max chain",
                "versions",
                "reclaimed",
                "read retries",
                "wm waits",
                "cow freed",
            ],
            &mvcc_rows
        )
    );
    println!(
        "hottest objects (top 3 per cell; per-object contention attribution:\n\
         lock blocks for the 2PL schemes, ww/ssi/read-retry events for mvcc)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "contention",
                "scheme",
                "rank",
                "object",
                "lock blocks",
                "ww",
                "ssi",
                "read retries",
                "total",
            ],
            &hot_table
        )
    );
    // Durability tax: the same medium-contention cell with the
    // write-ahead log attached, at each level. `wal` logs without a
    // commit-time fsync (group-committed asynchronously); `wal-sync`
    // acks a commit only after its record is on disk, so the mean
    // group-commit size shows how many commits shared each fsync.
    let mut wal_rows = Vec::new();
    for kind in [SchemeKind::Tav, SchemeKind::Mvcc, SchemeKind::MvccSsi] {
        for level in [
            DurabilityLevel::None,
            DurabilityLevel::Wal,
            DurabilityLevel::WalSync,
        ] {
            let env = generate_env(&SchemaGenConfig {
                classes: 10,
                seed: 33,
                write_prob: 0.6,
                self_call_prob: 0.4,
                ..SchemaGenConfig::default()
            });
            populate_random(&env, 4);
            let env = env.with_obs(std::sync::Arc::clone(&obs));
            let wl = generate_workload(
                &env,
                &WorkloadConfig {
                    txns,
                    hot_frac: 0.4,
                    hot_set: 6,
                    seed: 5,
                    ..WorkloadConfig::default()
                },
            );
            let dir = std::env::temp_dir().join(format!(
                "finecc-compare-wal-{}-{}-{}",
                std::process::id(),
                kind.name(),
                level.name()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let scheme = kind
                .build_durable(env, level, &dir)
                .expect("durable scheme builds");
            let report = run_concurrent(
                scheme.as_ref(),
                &wl.ops,
                ExecConfig {
                    threads: 4,
                    max_retries: 100,
                },
            );
            assert_eq!(report.failed, 0, "{kind}/{level}: non-retryable failure");
            if level == DurabilityLevel::None {
                assert!(report.wal.is_none(), "{kind}: log stats without a log");
            } else {
                assert!(report.log_bytes() > 0, "{kind}/{level}: nothing logged");
            }
            wal_rows.push(vec![
                kind.name().to_string(),
                level.name().to_string(),
                report.committed.to_string(),
                format!("{:.0}", report.throughput()),
                report.log_bytes().to_string(),
                report.log_fsyncs().to_string(),
                format!("{:.2}", report.group_commit_mean()),
            ]);
            let mut pairs = vec![
                ("experiment", JsonVal::from("durability_tax")),
                ("scheme", JsonVal::from(kind.name())),
                ("durability", JsonVal::from(level.name())),
                ("threads", JsonVal::from(4usize)),
                ("txns", JsonVal::from(txns)),
                ("committed", JsonVal::from(report.committed)),
                ("txns_per_sec", JsonVal::from(report.throughput())),
                ("log_bytes", JsonVal::from(report.log_bytes())),
                ("log_fsyncs", JsonVal::from(report.log_fsyncs())),
                (
                    "group_commit_mean",
                    JsonVal::from(report.group_commit_mean()),
                ),
            ];
            pairs.extend(mvcc_counter_pairs(&report));
            pairs.extend(latency_pairs(report.txn_latency()));
            json.push(json_object(&pairs));
            register_report_metrics(
                &reg,
                &[
                    ("experiment", "durability_tax"),
                    ("scheme", kind.name()),
                    ("durability", level.name()),
                ],
                &report,
            );
            obs.reset();
            drop(scheme);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    println!(
        "durability tax (medium contention; wal = async group commit, wal-sync = commit\n\
         acks only after its group fsync; 'mean batch' = commits amortized per fsync)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "scheme",
                "durability",
                "committed",
                "txn/s",
                "log bytes",
                "fsyncs",
                "mean batch",
            ],
            &wal_rows
        )
    );
    println!("shapes: tav has the lowest lock traffic per committed txn and");
    println!("zero upgrades; rw/fieldlock escalate; mvcc trades lock traffic for");
    println!("optimistic aborts (driven by written-field overlap, not skew");
    println!("alone); mvcc-ssi adds a second abort class — commit-time dangerous");
    println!("structures — as the price of serializability; all schemes commit");
    println!("all txns.");
    match write_bench_json("BENCH_schemes.json", &json) {
        Ok(path) => println!("\nmachine-readable results: {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_schemes.json: {e}"),
    }
    match write_artifact("BENCH_schemes.prom", &reg.render_prometheus()) {
        Ok(path) => println!("prometheus snapshot: {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_schemes.prom: {e}"),
    }
    match write_artifact("BENCH_schemes_metrics.json", &reg.render_json()) {
        Ok(path) => println!("metrics snapshot (json): {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_schemes_metrics.json: {e}"),
    }
    export_trace(&obs);
}
