//! Experiment E12 — the "evaluation table the paper never had": one
//! generated mixed workload (single-instance / some-of-domain /
//! whole-domain transactions with hot-spot skew) executed under all four
//! schemes, side by side, at several contention levels.
//!
//! Shapes: the TAV scheme issues the fewest lock requests at equal
//! admitted concurrency, never escalates, and its blocks/deadlocks track
//! the true (commutativity-aware) conflict rate. RW pays per-message
//! traffic and escalation deadlocks; field locking pays per-field
//! traffic; relational sits between, losing only inheritance-aware
//! parallelism (key-cascade writes).

use finecc_runtime::SchemeKind;
use finecc_sim::workload::{
    generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
};
use finecc_sim::{render_table, run_concurrent, ExecConfig, Metrics};

fn main() {
    let txns = 600usize;
    println!("mixed workload, 4 threads, {txns} txns, 10-class schema, by hot-spot skew\n");
    let mut rows = Vec::new();
    for (label, hot_frac, hot_set) in [
        ("low contention", 0.05, 16usize),
        ("medium contention", 0.4, 6),
        ("high contention", 0.8, 2),
    ] {
        for kind in SchemeKind::ALL {
            let env = generate_env(&SchemaGenConfig {
                classes: 10,
                seed: 33,
                write_prob: 0.6,
                self_call_prob: 0.4,
                ..SchemaGenConfig::default()
            });
            populate_random(&env, 4);
            let wl = generate_workload(
                &env,
                &WorkloadConfig {
                    txns,
                    hot_frac,
                    hot_set,
                    seed: 5,
                    ..WorkloadConfig::default()
                },
            );
            let scheme = kind.build(env);
            let report = run_concurrent(
                scheme.as_ref(),
                &wl.ops,
                ExecConfig {
                    threads: 4,
                    max_retries: 100,
                },
            );
            assert_eq!(report.failed, 0, "{kind}: non-retryable failure");
            let m = Metrics::from_report(format!("{label} / {kind}"), &report);
            rows.push(m.row());
        }
    }
    println!("{}", render_table(&Metrics::headers(), &rows));
    println!("shapes: tav has the lowest lock traffic per committed txn and");
    println!("zero upgrades; rw/fieldlock escalate; all schemes commit all txns.");
}
