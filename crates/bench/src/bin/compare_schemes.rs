//! Experiment E12 — the "evaluation table the paper never had": one
//! generated mixed workload (single-instance / some-of-domain /
//! whole-domain transactions with hot-spot skew) executed under all five
//! schemes, side by side, at several contention levels.
//!
//! Shapes: the TAV scheme issues the fewest lock requests at equal
//! admitted concurrency, never escalates, and its blocks/deadlocks track
//! the true (commutativity-aware) conflict rate. RW pays per-message
//! traffic and escalation deadlocks; field locking pays per-field
//! traffic; relational sits between, losing only inheritance-aware
//! parallelism (key-cascade writes). The MVCC scheme issues **zero**
//! lock requests — its cost shows up instead as optimistic aborts
//! (first-updater-wins validation failures, a function of how often
//! concurrent transactions overlap on written fields, not of skew
//! alone) and version-chain maintenance, reported in the second table.

use finecc_runtime::SchemeKind;
use finecc_sim::workload::{
    generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
};
use finecc_sim::{render_table, run_concurrent, ExecConfig, Metrics};

fn main() {
    let txns = 600usize;
    println!("mixed workload, 4 threads, {txns} txns, 10-class schema, by hot-spot skew\n");
    let mut rows = Vec::new();
    let mut mvcc_rows = Vec::new();
    for (label, hot_frac, hot_set) in [
        ("low contention", 0.05, 16usize),
        ("medium contention", 0.4, 6),
        ("high contention", 0.8, 2),
    ] {
        for kind in SchemeKind::ALL {
            let env = generate_env(&SchemaGenConfig {
                classes: 10,
                seed: 33,
                write_prob: 0.6,
                self_call_prob: 0.4,
                ..SchemaGenConfig::default()
            });
            populate_random(&env, 4);
            let wl = generate_workload(
                &env,
                &WorkloadConfig {
                    txns,
                    hot_frac,
                    hot_set,
                    seed: 5,
                    ..WorkloadConfig::default()
                },
            );
            let scheme = kind.build(env);
            let report = run_concurrent(
                scheme.as_ref(),
                &wl.ops,
                ExecConfig {
                    threads: 4,
                    max_retries: 100,
                },
            );
            assert_eq!(report.failed, 0, "{kind}: non-retryable failure");
            let m = Metrics::from_report(format!("{label} / {kind}"), &report);
            rows.push(m.row());
            if let Some(v) = report.mvcc {
                mvcc_rows.push(vec![
                    label.to_string(),
                    v.commits.to_string(),
                    v.aborts.to_string(),
                    v.write_conflicts.to_string(),
                    format!("{:.2}", v.mean_chain_len()),
                    v.chain_len_max.to_string(),
                    v.versions_created.to_string(),
                    v.versions_reclaimed.to_string(),
                ]);
            }
        }
    }
    println!("{}", render_table(&Metrics::headers(), &rows));
    println!(
        "mvcc detail (no locks: its concurrency costs are optimistic aborts and versions)\n"
    );
    println!(
        "{}",
        render_table(
            &[
                "contention",
                "commits",
                "aborts",
                "ww conflicts",
                "mean chain",
                "max chain",
                "versions",
                "reclaimed",
            ],
            &mvcc_rows
        )
    );
    println!("shapes: tav has the lowest lock traffic per committed txn and");
    println!("zero upgrades; rw/fieldlock escalate; mvcc trades lock traffic for");
    println!("a handful of optimistic aborts (driven by written-field overlap,");
    println!("not skew alone); all schemes commit all txns.");
}
