//! Experiment E1 — the worked example of §4.3: direct and transitive
//! access vectors of every method of Figure 1, printed in the paper's
//! notation, with the five TAV values the text states asserted exactly.

use finecc_core::{AccessMode, AccessVector};
use finecc_lang::parser::FIGURE1_SOURCE;
use finecc_model::{FieldId, Schema};

fn show(schema: &Schema, class: finecc_model::ClassId, av: &AccessVector) -> String {
    let fields: Vec<(FieldId, String)> = schema
        .class(class)
        .all_fields
        .iter()
        .map(|&f| (f, schema.field(f).name.clone()))
        .collect();
    av.display_over(fields.iter().map(|(f, n)| (*f, n.as_str())))
}

fn main() {
    let (schema, bodies) = finecc_lang::build_schema(FIGURE1_SOURCE).expect("parse");
    let compiled = finecc_core::compile(&schema, &bodies).expect("compile");

    for class_name in ["c1", "c2", "c3"] {
        let c = schema.class_by_name(class_name).unwrap();
        let t = compiled.class(c);
        println!("== class {class_name} ==");
        for (i, m) in t.method_names.iter().enumerate() {
            println!("  DAV({class_name},{m}) = {}", show(&schema, c, t.dav(i)));
            println!("  TAV({class_name},{m}) = {}", show(&schema, c, t.tav(i)));
        }
        println!();
    }

    // Assert the five values §4.3 prints, field by field.
    use AccessMode::*;
    let c1 = schema.class_by_name("c1").unwrap();
    let c2 = schema.class_by_name("c2").unwrap();
    let t2 = compiled.class(c2);
    let f = |cls: &str, name: &str| {
        let c = schema.class_by_name(cls).unwrap();
        schema.resolve_field(c, name).unwrap()
    };
    let check = |label: &str, av: &AccessVector, modes: [(&str, &str, AccessMode); 6]| {
        for (cls, name, want) in modes {
            assert_eq!(av.mode_of(f(cls, name)), want, "{label} at {name}");
        }
        println!("checked {label} against the paper ✓");
    };
    let m2c1 = schema.resolve_method(c1, "m2").unwrap();
    check(
        "TAV(c1,m2) [= DAV]",
        compiled.tav_of(c2, m2c1).unwrap(),
        [
            ("c1", "f1", Write),
            ("c1", "f2", Read),
            ("c1", "f3", Null),
            ("c2", "f4", Null),
            ("c2", "f5", Null),
            ("c2", "f6", Null),
        ],
    );
    check(
        "TAV(c2,m3)",
        t2.tav(t2.index_of("m3").unwrap()),
        [
            ("c1", "f1", Null),
            ("c1", "f2", Read),
            ("c1", "f3", Read),
            ("c2", "f4", Null),
            ("c2", "f5", Null),
            ("c2", "f6", Null),
        ],
    );
    check(
        "TAV(c2,m4)",
        t2.tav(t2.index_of("m4").unwrap()),
        [
            ("c1", "f1", Null),
            ("c1", "f2", Null),
            ("c1", "f3", Null),
            ("c2", "f4", Null),
            ("c2", "f5", Read),
            ("c2", "f6", Write),
        ],
    );
    check(
        "TAV(c2,m2)",
        t2.tav(t2.index_of("m2").unwrap()),
        [
            ("c1", "f1", Write),
            ("c1", "f2", Read),
            ("c1", "f3", Null),
            ("c2", "f4", Write),
            ("c2", "f5", Read),
            ("c2", "f6", Null),
        ],
    );
    check(
        "TAV(c2,m1)",
        t2.tav(t2.index_of("m1").unwrap()),
        [
            ("c1", "f1", Write),
            ("c1", "f2", Read),
            ("c1", "f3", Read),
            ("c2", "f4", Write),
            ("c2", "f5", Read),
            ("c2", "f6", Null),
        ],
    );
}
