//! The paper's Figure 1 as a reusable experiment fixture.

use finecc_model::{ClassId, Oid, Value};
use finecc_runtime::Env;
use std::time::Duration;

/// Figure 1 source, re-exported from the parser crate.
pub use finecc_lang::parser::FIGURE1_SOURCE;

/// The §5.2 *variant*: identical to Figure 1 except that `c1.m2` does not
/// modify the key field `f1` (it updates `f2` instead). The paper remarks
/// that with this change the relational schema would admit `T1‖T3‖T4`
/// (but still not `T2‖T3‖T4`).
pub const FIGURE1_NO_KEY_WRITE_SOURCE: &str = r#"
class c1 {
  fields {
    f1: integer;
    f2: boolean;
    f3: c3;
  }
  method m1(p1) is
    send m2(p1) to self;
    send m3 to self
  end
  method m2(p1) is
    f2 := cond(f1, p1)
  end
  method m3 is
    if f2 then
      send m to f3
    end
  end
}

class c2 inherits c1 {
  fields {
    f4: integer;
    f5: integer;
    f6: string;
  }
  method m2(p1) is redefined as
    send c1.m2(p1) to self;
    f4 := expr(f5, p1)
  end
  method m4(p1, p2) is
    if cond(f5, p1) then
      f6 := expr(f6, p2)
    end
  end
}

class c3 {
  fields {
    g1: integer;
  }
  method m is
    g1 := g1 + 1
  end
}
"#;

/// A populated Figure 1 database: class ids and the created instances.
pub struct Figure1Db {
    /// The environment (schema, compiled artifacts, store).
    pub env: Env,
    /// Class c1.
    pub c1: ClassId,
    /// Class c2.
    pub c2: ClassId,
    /// Class c3.
    pub c3: ClassId,
    /// Proper instances of c1.
    pub c1_instances: Vec<Oid>,
    /// Proper instances of c2.
    pub c2_instances: Vec<Oid>,
    /// Proper instances of c3 (referenced through `f3`).
    pub c3_instances: Vec<Oid>,
}

/// Builds a populated Figure 1 database with `n_per_class` instances of
/// c1 and of c2 (each wired to its own c3 instance through `f3`), using a
/// short lock timeout suitable for conflict probing.
pub fn populate(source: &str, n_per_class: usize, lock_timeout: Duration) -> Figure1Db {
    let env = Env::from_source(source)
        .expect("fixture source compiles")
        .with_lock_timeout(lock_timeout);
    let c1 = env.schema.class_by_name("c1").unwrap();
    let c2 = env.schema.class_by_name("c2").unwrap();
    let c3 = env.schema.class_by_name("c3").unwrap();
    let f3 = env.schema.resolve_field(c1, "f3").unwrap();
    let f5 = env.schema.resolve_field(c2, "f5").unwrap();

    let mut c1_instances = Vec::new();
    let mut c2_instances = Vec::new();
    let mut c3_instances = Vec::new();
    for i in 0..n_per_class {
        let target = env.db.create(c3);
        c3_instances.push(target);
        let o1 = env.db.create_with(c1, [(f3, Value::Ref(target))]).unwrap();
        c1_instances.push(o1);

        let target = env.db.create(c3);
        c3_instances.push(target);
        let o2 = env
            .db
            .create_with(
                c2,
                [(f3, Value::Ref(target)), (f5, Value::Int(i as i64 + 1))],
            )
            .unwrap();
        c2_instances.push(o2);
    }
    Figure1Db {
        env,
        c1,
        c2,
        c3,
        c1_instances,
        c2_instances,
        c3_instances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_wires_references() {
        let fx = populate(FIGURE1_SOURCE, 3, Duration::from_millis(100));
        assert_eq!(fx.c1_instances.len(), 3);
        assert_eq!(fx.c2_instances.len(), 3);
        assert_eq!(fx.c3_instances.len(), 6);
        assert_eq!(fx.env.db.deep_extent(fx.c1).len(), 6, "c1 domain spans c2");
        assert_eq!(fx.env.db.extent(fx.c3).len(), 6);
    }

    #[test]
    fn no_key_write_variant_compiles_and_differs() {
        let fx = populate(FIGURE1_NO_KEY_WRITE_SOURCE, 1, Duration::from_millis(100));
        let t = fx.env.compiled.class(fx.c1);
        let m1 = t.index_of("m1").unwrap();
        let f1 = fx.env.schema.resolve_field(fx.c1, "f1").unwrap();
        let f2 = fx.env.schema.resolve_field(fx.c1, "f2").unwrap();
        use finecc_core::AccessMode::*;
        assert_eq!(t.tav(m1).mode_of(f1), Read, "key only read in variant");
        assert_eq!(t.tav(m1).mode_of(f2), Write);
    }
}
