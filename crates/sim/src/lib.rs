//! # finecc-sim — workloads, scenarios, and the concurrent executor
//!
//! Everything the experiments need beyond the library itself:
//!
//! * [`figure1`] — the paper's running example as a reusable fixture
//!   (schema source, populated databases, and a no-key-write variant for
//!   the §5.2 relational remark).
//! * [`scenarios`] — the T1–T4 machinery of §5.2: runs each transaction's
//!   lock acquisition against a scheme and probes pairwise compatibility,
//!   reproducing the paper's "either T1‖T3‖T4 or T2‖T3‖T4" result and the
//!   baselines' weaker outcomes.
//! * [`workload`] — seeded random schema/program generation (inheritance
//!   chains, overrides, self-call graphs) and transaction mixes with
//!   hot-spot skew.
//! * [`exec`] — a multi-threaded transaction executor with commit/abort/
//!   retry accounting.
//! * [`stepper`] — a deterministic round-robin driver for reproducible
//!   schedules.
//! * [`metrics`] — experiment result aggregation and table rendering.
//! * [`chaos`] — deterministic fault-injection scenarios over the
//!   `finecc-chaos` harness: seeded schedule exploration across all six
//!   schemes, invariant checking (lost own writes, torn pairs,
//!   watermark regressions, recovery = committed prefix), greedy
//!   schedule minimization, and replayable repro files.

pub mod chaos;
pub mod exec;
pub mod figure1;
pub mod metrics;
pub mod scenarios;
pub mod stepper;
pub mod workload;

pub use chaos::{
    explore, minimize, read_repro, replay_repro, run_chaos, write_repro, Anomaly, ChaosOp,
    ChaosReport, ChaosScenario, Finding,
};
pub use exec::{run_concurrent, run_sequential, ExecConfig, ExecReport};
pub use metrics::{render_table, Metrics};
pub use scenarios::{scenario_outcomes, ScenarioOutcome, TxnKind};
pub use stepper::{run_stepped, StepReport};
pub use workload::{GeneratedWorkload, SchemaGenConfig, TxnMix, WorkloadConfig};
