//! Result aggregation and plain-text table rendering for experiments.

use crate::exec::ExecReport;
use std::fmt::Write as _;

/// A named experiment measurement row.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// Row label (scheme name, parameter value, …).
    pub label: String,
    /// Committed transactions.
    pub committed: u64,
    /// Exhausted (gave up after retries).
    pub exhausted: u64,
    /// Failed (non-retryable).
    pub failed: u64,
    /// Total deadlock retries.
    pub retries: u64,
    /// Lock requests issued.
    pub lock_requests: u64,
    /// Requests that blocked.
    pub blocks: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Lock conversions (escalations).
    pub upgrades: u64,
    /// Committed transactions per second.
    pub throughput: f64,
    /// End-to-end transaction latency quantiles, microseconds (all
    /// zero when observability is disabled).
    pub lat_p50_us: f64,
    /// 90th-percentile transaction latency, microseconds.
    pub lat_p90_us: f64,
    /// 99th-percentile transaction latency, microseconds.
    pub lat_p99_us: f64,
}

impl Metrics {
    /// Builds a row from an execution report.
    pub fn from_report(label: impl Into<String>, r: &ExecReport) -> Metrics {
        let lat = r.txn_latency();
        Metrics {
            label: label.into(),
            committed: r.committed,
            exhausted: r.exhausted,
            failed: r.failed,
            retries: r.retries,
            lock_requests: r.lock.requests,
            blocks: r.lock.blocks,
            deadlocks: r.lock.deadlocks,
            upgrades: r.lock.upgrades,
            throughput: r.throughput(),
            lat_p50_us: finecc_obs::LatencySummary::us(lat.p50),
            lat_p90_us: finecc_obs::LatencySummary::us(lat.p90),
            lat_p99_us: finecc_obs::LatencySummary::us(lat.p99),
        }
    }

    /// The standard column headers matching [`Metrics::row`].
    pub fn headers() -> Vec<&'static str> {
        vec![
            "scheme",
            "committed",
            "retries",
            "deadlocks",
            "lock reqs",
            "blocks",
            "upgrades",
            "txn/s",
            "p50 µs",
            "p90 µs",
            "p99 µs",
        ]
    }

    /// The row cells matching [`Metrics::headers`].
    pub fn row(&self) -> Vec<String> {
        vec![
            self.label.clone(),
            self.committed.to_string(),
            self.retries.to_string(),
            self.deadlocks.to_string(),
            self.lock_requests.to_string(),
            self.blocks.to_string(),
            self.upgrades.to_string(),
            format!("{:.0}", self.throughput),
            format!("{:.0}", self.lat_p50_us),
            format!("{:.0}", self.lat_p90_us),
            format!("{:.0}", self.lat_p99_us),
        ]
    }
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, h) in headers.iter().enumerate() {
        write!(out, "{h:<w$}  ", w = widths[i]).unwrap();
    }
    out.push('\n');
    for (i, _) in headers.iter().enumerate() {
        write!(out, "{}  ", "-".repeat(widths[i])).unwrap();
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            write!(out, "{cell:<w$}  ", w = widths[i]).unwrap();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyyyyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with("--------"));
    }

    #[test]
    fn metrics_from_report() {
        let r = ExecReport {
            committed: 10,
            elapsed: Duration::from_secs(2),
            ..Default::default()
        };
        let m = Metrics::from_report("tav", &r);
        assert_eq!(m.throughput, 5.0);
        assert_eq!(m.row().len(), Metrics::headers().len());
    }
}
