//! The §5.2 scenario: transactions T1–T4 under every scheme.
//!
//! * **T1** sends `m1` to one instance `i` of `c1`.
//! * **T2** sends `m1` to all instances of class `c1` (deep extent).
//! * **T3** sends `m3` to several instances of the domain rooted at `c1`.
//! * **T4** sends `m4` to all instances of the domain rooted at `c2`.
//!
//! The paper concludes: under transitive access vectors either
//! `T1‖T3‖T4` or `T2‖T3‖T4` is possible; with read/write modes alone only
//! `T1‖T3` or `T1‖T4`; in the relational decomposition only `T1‖T3` or
//! `T3‖T4` (and `T1‖T3‖T4` if `m2` spared the key field).
//!
//! [`scenario_outcomes`] reproduces this mechanically: it executes each
//! transaction's locking against a live scheme and probes every pair for
//! compatibility (a short lock timeout turns "would wait" into a detected
//! conflict), then enumerates the maximal concurrent sets.

use crate::figure1::{populate, Figure1Db};
use finecc_lang::ExecError;
use finecc_model::Value;
use finecc_runtime::{CcScheme, SchemeKind, Txn};
use std::fmt;
use std::time::Duration;

/// The four §5.2 transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxnKind {
    /// `m1` to one instance of c1.
    T1,
    /// `m1` to all instances of class c1.
    T2,
    /// `m3` to some instances of domain c1.
    T3,
    /// `m4` to all instances of domain c2.
    T4,
}

impl TxnKind {
    /// All four, in order.
    pub const ALL: [TxnKind; 4] = [TxnKind::T1, TxnKind::T2, TxnKind::T3, TxnKind::T4];

    /// The paper's description of the transaction.
    pub fn describe(self) -> &'static str {
        match self {
            TxnKind::T1 => "m1 to one instance of c1",
            TxnKind::T2 => "m1 to all instances of class c1",
            TxnKind::T3 => "m3 to some instances of domain c1",
            TxnKind::T4 => "m4 to all instances of domain c2",
        }
    }
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The outcome of probing one scheme.
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Scheme name.
    pub scheme: &'static str,
    /// `pairwise[i][j]`: can Tj run while Ti holds its locks?
    pub pairwise: [[bool; 4]; 4],
    /// Maximal sets of mutually compatible transactions (size ≥ 2),
    /// sorted lexicographically.
    pub maximal_sets: Vec<Vec<TxnKind>>,
}

impl ScenarioOutcome {
    /// Whether a set is admitted (appears in, or is covered by, a maximal
    /// set).
    pub fn admits(&self, set: &[TxnKind]) -> bool {
        self.maximal_sets
            .iter()
            .any(|m| set.iter().all(|t| m.contains(t)))
    }

    /// Renders the pairwise matrix like the paper's commutativity tables.
    pub fn to_table_string(&self) -> String {
        let mut out = String::from("     T1   T2   T3   T4\n");
        for (i, k) in TxnKind::ALL.iter().enumerate() {
            out.push_str(&format!("{k:?}  "));
            for j in 0..4 {
                let cell = if i == j {
                    " -  "
                } else if self.pairwise[i][j] {
                    "yes "
                } else {
                    "no  "
                };
                out.push_str(&format!("{cell} "));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs one transaction's full execution (locks held afterwards).
fn run(
    scheme: &dyn CcScheme,
    fx: &Figure1Db,
    txn: &mut Txn,
    kind: TxnKind,
    shared_instance: bool,
) -> Result<(), ExecError> {
    match kind {
        TxnKind::T1 => scheme
            .send(txn, fx.c1_instances[0], "m1", &[Value::Int(1)])
            .map(drop),
        TxnKind::T2 => scheme
            .send_all(txn, fx.c1, "m1", &[Value::Int(1)])
            .map(drop),
        TxnKind::T3 => {
            // "several instances of the domain rooted at c1": one c1 and
            // one c2 instance; optionally sharing T1's instance.
            let mut oids = vec![fx.c2_instances[0]];
            if shared_instance {
                oids.push(fx.c1_instances[0]);
            } else {
                oids.push(fx.c1_instances[1]);
            }
            oids.sort_unstable();
            scheme.send_some(txn, fx.c1, &oids, "m3", &[]).map(drop)
        }
        TxnKind::T4 => scheme
            .send_all(txn, fx.c2, "m4", &[Value::Int(1), Value::Int(1)])
            .map(drop),
    }
}

/// Probes all pairs of §5.2 transactions under `kind`, on `source`
/// (Figure 1 or the no-key-write variant). `shared_instance` makes T3
/// touch T1's instance (the paper's parenthetical caveat).
pub fn scenario_outcomes(kind: SchemeKind, source: &str, shared_instance: bool) -> ScenarioOutcome {
    let mut pairwise = [[false; 4]; 4];
    for (i, ti) in TxnKind::ALL.iter().enumerate() {
        for (j, tj) in TxnKind::ALL.iter().enumerate() {
            if i == j {
                continue;
            }
            // Fresh database per probe so residue cannot leak.
            let fx = populate(source, 2, Duration::from_millis(40));
            let scheme = kind.build(fx.env.clone());
            let mut txn_i = scheme.begin();
            run(scheme.as_ref(), &fx, &mut txn_i, *ti, shared_instance)
                .expect("first transaction must succeed on an idle database");
            let mut txn_j = scheme.begin();
            let ok = match run(scheme.as_ref(), &fx, &mut txn_j, *tj, shared_instance) {
                Ok(()) => true,
                Err(ExecError::ConcurrencyAbort { .. }) => false,
                Err(other) => panic!("unexpected scenario error: {other}"),
            };
            pairwise[i][j] = ok;
            scheme.abort(txn_j);
            scheme.abort(txn_i);
        }
    }

    // Maximal mutually compatible sets (pairwise compatibility is
    // sufficient under 2PL: lock sets are additive).
    let compatible = |i: usize, j: usize| pairwise[i][j] && pairwise[j][i];
    let mut sets: Vec<Vec<TxnKind>> = Vec::new();
    for mask in 1u32..16 {
        let members: Vec<usize> = (0..4).filter(|&b| mask & (1 << b) != 0).collect();
        if members.len() < 2 {
            continue;
        }
        let all_compat = members
            .iter()
            .enumerate()
            .all(|(a, &i)| members[a + 1..].iter().all(|&j| compatible(i, j)));
        if all_compat {
            sets.push(members.iter().map(|&i| TxnKind::ALL[i]).collect());
        }
    }
    // Keep only maximal sets.
    let maximal_sets: Vec<Vec<TxnKind>> = sets
        .iter()
        .filter(|s| {
            !sets
                .iter()
                .any(|t| t.len() > s.len() && s.iter().all(|x| t.contains(x)))
        })
        .cloned()
        .collect();
    let mut maximal_sets = maximal_sets;
    maximal_sets.sort();
    maximal_sets.dedup();

    ScenarioOutcome {
        scheme: kind.name(),
        pairwise,
        maximal_sets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::{FIGURE1_NO_KEY_WRITE_SOURCE, FIGURE1_SOURCE};

    use TxnKind::*;

    /// The paper's headline result: TAVs admit T1‖T3‖T4 and T2‖T3‖T4.
    #[test]
    fn tav_admits_paper_sets() {
        let o = scenario_outcomes(SchemeKind::Tav, FIGURE1_SOURCE, false);
        assert_eq!(o.maximal_sets, vec![vec![T1, T3, T4], vec![T2, T3, T4]]);
    }

    /// §5.2: "With read and write access modes alone, either T1‖T3 …
    /// or T1‖T4."
    #[test]
    fn rw_admits_only_pairs() {
        let o = scenario_outcomes(SchemeKind::Rw, FIGURE1_SOURCE, false);
        assert_eq!(o.maximal_sets, vec![vec![T1, T3], vec![T1, T4]]);
    }

    /// §5.2: "in the associated relational schema … either T1‖T3, or
    /// T3‖T4 are allowed."
    #[test]
    fn relational_admits_its_pairs() {
        let o = scenario_outcomes(SchemeKind::Relational, FIGURE1_SOURCE, false);
        assert_eq!(o.maximal_sets, vec![vec![T1, T3], vec![T3, T4]]);
    }

    /// §5.2 remark: without the key write, the relational schema admits
    /// T1‖T3‖T4 — but still not T2‖T3‖T4.
    #[test]
    fn relational_no_key_write_variant() {
        let o = scenario_outcomes(SchemeKind::Relational, FIGURE1_NO_KEY_WRITE_SOURCE, false);
        assert!(o.admits(&[T1, T3, T4]), "sets: {:?}", o.maximal_sets);
        assert!(!o.admits(&[T2, T3, T4]), "sets: {:?}", o.maximal_sets);
    }

    /// Field locking sits between RW and TAV here: same maximal sets as
    /// RW on disjoint instances (extent ops serialize it) …
    #[test]
    fn fieldlock_disjoint() {
        let o = scenario_outcomes(SchemeKind::FieldLock, FIGURE1_SOURCE, false);
        assert_eq!(o.maximal_sets, vec![vec![T1, T3], vec![T1, T4]]);
    }

    /// … but when T1 and T3 share an instance, RW conflicts (whole-
    /// instance W vs R) while field locking still admits them (disjoint
    /// fields) — and so does the TAV scheme (m1 and m3 commute).
    #[test]
    fn shared_instance_separates_schemes() {
        let rw = scenario_outcomes(SchemeKind::Rw, FIGURE1_SOURCE, true);
        assert!(!rw.admits(&[T1, T3]));
        let fl = scenario_outcomes(SchemeKind::FieldLock, FIGURE1_SOURCE, true);
        assert!(fl.admits(&[T1, T3]));
        let tav = scenario_outcomes(SchemeKind::Tav, FIGURE1_SOURCE, true);
        assert!(tav.admits(&[T1, T3]));
    }

    /// The paper's observation that TAV and relational parallelism are
    /// *incomparable*: TAV admits T1‖T4 (relational does not, key write);
    /// relational admits nothing TAV misses here, but under RW vs
    /// relational each admits a set the other rejects.
    #[test]
    fn incomparability_observed() {
        let tav = scenario_outcomes(SchemeKind::Tav, FIGURE1_SOURCE, false);
        let rel = scenario_outcomes(SchemeKind::Relational, FIGURE1_SOURCE, false);
        let rw = scenario_outcomes(SchemeKind::Rw, FIGURE1_SOURCE, false);
        assert!(tav.admits(&[T1, T4]) && !rel.admits(&[T1, T4]));
        assert!(rel.admits(&[T3, T4]) && !rw.admits(&[T3, T4]));
        assert!(rw.admits(&[T1, T4]) && !rel.admits(&[T1, T4]));
    }

    #[test]
    fn table_renders() {
        let o = scenario_outcomes(SchemeKind::Tav, FIGURE1_SOURCE, false);
        let t = o.to_table_string();
        assert!(t.contains("T1") && t.contains("yes"));
        assert!(o.admits(&[T3, T4]));
        assert!(!o.admits(&[T1, T2]));
    }
}
