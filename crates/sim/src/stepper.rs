//! Deterministic interleaved execution.
//!
//! The threaded executor ([`crate::exec`]) measures real contention but
//! its interleavings are nondeterministic. The stepper runs a set of
//! transactions *one lock request at a time* in a fixed round-robin
//! order, using the lock manager's non-blocking `try_acquire` through
//! the schemes' normal code path, by virtue of a short lock timeout and
//! single-threaded retry: a transaction that would block is aborted,
//! rolled back, and re-queued behind the others.
//!
//! The result is a fully reproducible schedule: same seed → same grants,
//! same aborts, same final state — which is what the property tests and
//! regression experiments need.

use crate::workload::TxnOp;
use finecc_runtime::CcScheme;
use std::collections::VecDeque;

/// Outcome of a deterministic run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Transactions committed, in commit order (indices into the input).
    pub commit_order: Vec<usize>,
    /// Total aborts (would-block, deadlock, or refused commit) before
    /// success.
    pub aborts: u64,
    /// The subset of [`StepReport::aborts`] refused at **commit time**
    /// (mvcc-ssi dangerous-structure validation; the scheme has already
    /// rolled the transaction back when commit returns the refusal) as
    /// opposed to aborting mid-execution. Zero for every other scheme.
    pub commit_refusals: u64,
    /// Transactions that exceeded the retry budget (left uncommitted).
    pub starved: Vec<usize>,
}

/// Runs `ops` to completion in deterministic rounds.
///
/// Strategy: keep a FIFO of pending transactions. Each round pops one
/// transaction and runs it to completion; if it hits a concurrency abort
/// (lock timeout/deadlock — with a single driver thread any block is
/// permanent, so short timeouts are the scheme's `WouldBlock`), it is
/// rolled back and re-enqueued. `max_rounds` bounds livelock.
pub fn run_stepped(scheme: &dyn CcScheme, ops: &[TxnOp], max_rounds_per_txn: u32) -> StepReport {
    let mut pending: VecDeque<(usize, u32)> = (0..ops.len()).map(|i| (i, 0)).collect();
    let mut report = StepReport::default();
    while let Some((i, tries)) = pending.pop_front() {
        let mut txn = scheme.begin();
        let committed = match ops[i].run(scheme, &mut txn) {
            // Commit itself can refuse (mvcc-ssi validation); the scheme
            // has rolled back already, so treat it like any abort —
            // re-queued on a fresh snapshot — while counting the class
            // separately.
            Ok(()) => match scheme.commit(txn) {
                Ok(_) => true,
                Err(e) if e.is_retryable() => {
                    report.commit_refusals += 1;
                    false
                }
                Err(e) => panic!("stepper commit failed non-retryably: {e}"),
            },
            Err(e) if e.is_retryable() => {
                scheme.abort(txn);
                false
            }
            Err(e) => panic!("stepper transaction failed non-retryably: {e}"),
        };
        if committed {
            report.commit_order.push(i);
        } else {
            report.aborts += 1;
            if tries + 1 >= max_rounds_per_txn {
                report.starved.push(i);
            } else {
                pending.push_back((i, tries + 1));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{
        generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
    };
    use finecc_runtime::SchemeKind;

    fn fixture(seed: u64) -> (finecc_runtime::Env, Vec<TxnOp>) {
        let env = generate_env(&SchemaGenConfig {
            classes: 5,
            seed,
            ..SchemaGenConfig::default()
        });
        populate_random(&env, 3);
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns: 60,
                seed: seed ^ 0xabcd,
                ..WorkloadConfig::default()
            },
        );
        (env, wl.ops)
    }

    #[test]
    fn single_driver_commits_everything_in_order() {
        let (env, ops) = fixture(3);
        let scheme = SchemeKind::Tav.build(env);
        let r = run_stepped(scheme.as_ref(), &ops, 10);
        // One driver, strict 2PL released at each commit: nothing can
        // block, so commit order == submission order, zero aborts.
        assert_eq!(r.commit_order, (0..ops.len()).collect::<Vec<_>>());
        assert_eq!(r.aborts, 0);
        assert!(r.starved.is_empty());
    }

    #[test]
    fn deterministic_across_runs_and_schemes() {
        for kind in SchemeKind::ALL {
            let (env1, ops) = fixture(9);
            let s1 = kind.build(env1);
            let r1 = run_stepped(s1.as_ref(), &ops, 10);
            let snap1 = s1.env().db.snapshot();

            let (env2, ops2) = fixture(9);
            let s2 = kind.build(env2);
            let r2 = run_stepped(s2.as_ref(), &ops2, 10);
            let snap2 = s2.env().db.snapshot();

            assert_eq!(r1, r2, "{kind}: stepper must be deterministic");
            assert_eq!(snap1, snap2, "{kind}: final states must agree");
            assert!(
                r1.commit_refusals <= r1.aborts,
                "{kind}: refusals are a subset of aborts"
            );
            if kind != SchemeKind::MvccSsi {
                assert_eq!(
                    r1.commit_refusals, 0,
                    "{kind}: only mvcc-ssi refuses at commit time"
                );
            }
        }
    }

    #[test]
    fn stepped_matches_threaded_final_state_for_commuting_ops() {
        // All ops commute → threaded and stepped runs converge to the
        // same state regardless of interleaving.
        let env = finecc_runtime::Env::from_source(
            "class c { fields { a: integer; } method bump is a := a + 1 end }",
        )
        .unwrap();
        let c = env.schema.class_by_name("c").unwrap();
        let oid = env.db.create(c);
        let ops: Vec<TxnOp> = (0..50)
            .map(|_| TxnOp::One {
                oid,
                method: "bump".into(),
                args: vec![],
            })
            .collect();
        let stepped = SchemeKind::Tav.build(env.clone());
        run_stepped(stepped.as_ref(), &ops, 10);

        let env2 = finecc_runtime::Env::from_source(
            "class c { fields { a: integer; } method bump is a := a + 1 end }",
        )
        .unwrap();
        let c2 = env2.schema.class_by_name("c").unwrap();
        let oid2 = env2.db.create(c2);
        let ops2: Vec<TxnOp> = (0..50)
            .map(|_| TxnOp::One {
                oid: oid2,
                method: "bump".into(),
                args: vec![],
            })
            .collect();
        let threaded = SchemeKind::Tav.build(env2);
        let r = crate::exec::run_concurrent(
            threaded.as_ref(),
            &ops2,
            crate::exec::ExecConfig {
                threads: 4,
                max_retries: 50,
            },
        );
        assert_eq!(r.committed, 50);
        assert_eq!(
            stepped.env().read_named(oid, "c", "a"),
            threaded.env().read_named(oid2, "c", "a"),
        );
    }
}
