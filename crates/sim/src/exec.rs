//! Concurrent and sequential workload execution.

use crate::workload::TxnOp;
use finecc_runtime::{run_txn, CcScheme, TxnOutcome};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExecConfig {
    /// Worker threads.
    pub threads: usize,
    /// Deadlock retries per transaction before giving up.
    pub max_retries: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 4,
            max_retries: 10,
        }
    }
}

/// Aggregate result of an execution run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecReport {
    /// Transactions that committed.
    pub committed: u64,
    /// Transactions that exhausted their deadlock retries.
    pub exhausted: u64,
    /// Transactions that failed with a non-retryable error.
    pub failed: u64,
    /// Total deadlock retries across all transactions.
    pub retries: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Lock-manager statistics accumulated during the run.
    pub lock: finecc_lock::StatsSnapshot,
    /// Version-heap statistics accumulated during the run (`None` for
    /// the pure locking schemes).
    pub mvcc: Option<finecc_mvcc::MvccStatsSnapshot>,
    /// Write-ahead-log statistics accumulated during the run (`None`
    /// at `DurabilityLevel::None`).
    pub wal: Option<finecc_wal::WalStatsSnapshot>,
    /// Observability report for the run: latency histograms by phase,
    /// hottest objects, and contention-class totals. All zero (and
    /// `enabled == false`) unless the scheme's environment carries an
    /// enabled `finecc_obs::Obs`.
    pub obs: finecc_obs::ObsReport,
}

impl ExecReport {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.committed as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// First-updater-wins write-write conflicts during the run (0 for
    /// lock schemes).
    pub fn ww_conflicts(&self) -> u64 {
        self.mvcc.map_or(0, |m| m.write_conflicts)
    }

    /// Commits refused by SSI dangerous-structure validation during the
    /// run — the distinct abort class of the `mvcc-ssi` scheme (0 for
    /// every other scheme).
    pub fn ssi_aborts(&self) -> u64 {
        self.mvcc.map_or(0, |m| m.ssi_aborts)
    }

    /// Latch-free-read miss-revalidation retries during the run (0 for
    /// lock schemes) — one of the mvcc read path's contention
    /// counters, surfaced here so bench output can track it.
    pub fn read_retries(&self) -> u64 {
        self.mvcc.map_or(0, |m| m.read_retries)
    }

    /// Epoch-pin acquisition retries on the mvcc read path during the
    /// run (0 for lock schemes).
    pub fn read_pin_retries(&self) -> u64 {
        self.mvcc.map_or(0, |m| m.read_pin_retries)
    }

    /// Commit timestamps drawn but refused (published as skips) during
    /// the run — nonzero only under `mvcc-ssi`.
    pub fn ts_skips(&self) -> u64 {
        self.mvcc.map_or(0, |m| m.ts_skips)
    }

    /// Commit publications that hit the watermark ring's overflow
    /// fallback during the run (0 for lock schemes).
    pub fn watermark_waits(&self) -> u64 {
        self.mvcc.map_or(0, |m| m.watermark_waits)
    }

    /// Retired copy-on-write snapshots freed during the run (0 for
    /// lock schemes).
    pub fn cow_reclaimed(&self) -> u64 {
        self.mvcc.map_or(0, |m| m.cow_reclaimed)
    }

    /// Bytes appended to the write-ahead log during the run (0 without
    /// durability).
    pub fn log_bytes(&self) -> u64 {
        self.wal.map_or(0, |w| w.log_bytes)
    }

    /// `fsync` calls the log's flusher issued during the run (0
    /// without durability).
    pub fn log_fsyncs(&self) -> u64 {
        self.wal.map_or(0, |w| w.log_fsyncs)
    }

    /// Mean records per group-commit round during the run (0 without
    /// durability).
    pub fn group_commit_mean(&self) -> f64 {
        self.wal.map_or(0.0, |w| w.mean_group_commit())
    }

    /// p99 records per group-commit round during the run (0 without
    /// durability).
    pub fn group_commit_p99(&self) -> u64 {
        self.wal.map_or(0, |w| w.group_commit_p99)
    }

    /// End-to-end transaction latency summary for the run (all zero
    /// when observability is disabled).
    pub fn txn_latency(&self) -> finecc_obs::LatencySummary {
        self.obs.phase(finecc_obs::Phase::TxnLatency)
    }

    /// Transaction latency over the freshest rotated windows at the end
    /// of the run — the "recent" view, as opposed to the cumulative
    /// [`ExecReport::txn_latency`]. All zero when observability is
    /// disabled or the run ended before the first window rotated.
    pub fn windowed_txn_latency(&self) -> finecc_obs::LatencySummary {
        self.obs.windowed_phase(finecc_obs::Phase::TxnLatency)
    }
}

/// Runs the workload across `cfg.threads` workers (ops are dealt
/// round-robin), with per-transaction deadlock retry. Lock statistics are
/// measured relative to the scheme's counters at entry.
pub fn run_concurrent(scheme: &dyn CcScheme, ops: &[TxnOp], cfg: ExecConfig) -> ExecReport {
    let before = scheme.stats();
    let mvcc_before = scheme.mvcc_stats();
    let wal_before = scheme.wal_stats();
    let obs_before = scheme.obs().snapshot();
    let committed = AtomicU64::new(0);
    let exhausted = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let next = AtomicUsize::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= ops.len() {
                    break;
                }
                let op = &ops[i];
                match run_txn(scheme, cfg.max_retries, |txn| op.run(scheme, txn)) {
                    TxnOutcome::Committed { retries: r, .. } => {
                        committed.fetch_add(1, Ordering::Relaxed);
                        retries.fetch_add(u64::from(r), Ordering::Relaxed);
                    }
                    TxnOutcome::Exhausted { retries: r } => {
                        exhausted.fetch_add(1, Ordering::Relaxed);
                        retries.fetch_add(u64::from(r), Ordering::Relaxed);
                    }
                    TxnOutcome::Failed(_) => {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let elapsed = start.elapsed();
    // Drain the group-commit flusher before the WAL snapshot: at the
    // async level acked commits may still be in flight, and a report
    // claiming "nothing logged" for a committed workload would be a
    // timing artifact. The drain sits outside the timed window — async
    // ack latency is the point of that level. Best-effort: a poisoned
    // log keeps whatever counters it reached.
    if let Some(w) = &scheme.env().wal {
        let _ = w.sync();
    }

    ExecReport {
        committed: committed.into_inner(),
        exhausted: exhausted.into_inner(),
        failed: failed.into_inner(),
        retries: retries.into_inner(),
        elapsed,
        lock: scheme.stats().since(&before),
        mvcc: scheme
            .mvcc_stats()
            .map(|after| after.since(&mvcc_before.unwrap_or_default())),
        wal: scheme
            .wal_stats()
            .map(|after| after.since(&wal_before.unwrap_or_default())),
        obs: scheme.obs().report_since(&obs_before),
    }
}

/// Deterministic single-threaded execution (ops in order).
pub fn run_sequential(scheme: &dyn CcScheme, ops: &[TxnOp], max_retries: u32) -> ExecReport {
    run_concurrent(
        scheme,
        ops,
        ExecConfig {
            threads: 1,
            max_retries,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{
        generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
    };
    use finecc_runtime::SchemeKind;

    fn workload_env() -> finecc_runtime::Env {
        let env = generate_env(&SchemaGenConfig {
            classes: 6,
            seed: 17,
            ..SchemaGenConfig::default()
        });
        populate_random(&env, 4);
        env
    }

    #[test]
    fn sequential_commits_everything() {
        let env = workload_env();
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns: 100,
                seed: 1,
                ..WorkloadConfig::default()
            },
        );
        let scheme = SchemeKind::Tav.build(env);
        let r = run_sequential(scheme.as_ref(), &wl.ops, 5);
        assert_eq!(r.committed, 100);
        assert_eq!(r.failed, 0);
        assert_eq!(r.exhausted, 0);
        assert!(r.lock.requests > 0);
    }

    #[test]
    fn concurrent_all_schemes_complete() {
        for kind in SchemeKind::ALL {
            let env = workload_env();
            let wl = generate_workload(
                &env,
                &WorkloadConfig {
                    txns: 200,
                    seed: 2,
                    ..WorkloadConfig::default()
                },
            );
            let scheme = kind.build(env);
            let r = run_concurrent(
                scheme.as_ref(),
                &wl.ops,
                ExecConfig {
                    threads: 4,
                    max_retries: 20,
                },
            );
            assert_eq!(r.failed, 0, "{kind}: non-retryable failures");
            assert_eq!(
                r.committed + r.exhausted,
                200,
                "{kind}: every txn accounted for"
            );
            assert!(
                r.committed >= 190,
                "{kind}: unexpectedly many exhausted txns ({r:?})"
            );
        }
    }

    #[test]
    fn mvcc_reports_version_stats_and_lock_schemes_dont() {
        let env = workload_env();
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns: 100,
                seed: 4,
                ..WorkloadConfig::default()
            },
        );
        let scheme = SchemeKind::Mvcc.build(env);
        let r = run_concurrent(scheme.as_ref(), &wl.ops, ExecConfig::default());
        let m = r.mvcc.expect("mvcc scheme reports heap stats");
        assert_eq!(m.commits, r.committed, "every commit is a heap commit");
        assert!(m.versions_created > 0);
        assert_eq!(
            r.lock,
            finecc_lock::StatsSnapshot::default(),
            "snapshot reads and optimistic writes take no locks"
        );

        let env = workload_env();
        let scheme = SchemeKind::Tav.build(env);
        let r = run_sequential(scheme.as_ref(), &wl.ops, 5);
        assert!(r.mvcc.is_none(), "lock schemes have no version heap");
    }

    #[test]
    fn throughput_is_positive() {
        let env = workload_env();
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns: 50,
                seed: 3,
                ..WorkloadConfig::default()
            },
        );
        let scheme = SchemeKind::Rw.build(env);
        let r = run_concurrent(scheme.as_ref(), &wl.ops, ExecConfig::default());
        assert!(r.throughput() > 0.0);
        assert!(r.elapsed > Duration::ZERO);
    }
}
