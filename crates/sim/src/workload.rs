//! Seeded random schema/program generation and transaction workloads.
//!
//! The generator emits *source text* in the method language — exercising
//! the full parser → analysis → TAV pipeline exactly as a user schema
//! would — with controllable inheritance depth, override density, field
//! counts, self-call structure and read/write balance. All randomness is
//! seeded, so every experiment is reproducible.

use finecc_lang::ExecError;
use finecc_model::{Oid, Value};
use finecc_runtime::{CcScheme, Env, Txn};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt::Write as _;

/// Configuration of the random schema generator.
#[derive(Clone, Debug)]
pub struct SchemaGenConfig {
    /// Number of classes.
    pub classes: usize,
    /// Probability that a non-root class takes a second parent.
    pub multi_parent_prob: f64,
    /// Probability that a class is a fresh root (no parent).
    pub root_prob: f64,
    /// Fields per class, inclusive range.
    pub fields_per_class: (usize, usize),
    /// Methods per class, inclusive range.
    pub methods_per_class: (usize, usize),
    /// Number of distinct method names (the override pool).
    pub method_pool: usize,
    /// Statements per method body, inclusive range.
    pub stmts_per_method: (usize, usize),
    /// Probability that a statement writes a field (vs reads).
    pub write_prob: f64,
    /// Probability that a statement is a self-call.
    pub self_call_prob: f64,
    /// Probability that an overriding method calls the overridden version.
    pub prefixed_call_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SchemaGenConfig {
    fn default() -> Self {
        SchemaGenConfig {
            classes: 10,
            multi_parent_prob: 0.1,
            root_prob: 0.15,
            fields_per_class: (1, 4),
            methods_per_class: (1, 4),
            method_pool: 8,
            stmts_per_method: (1, 4),
            write_prob: 0.5,
            self_call_prob: 0.35,
            prefixed_call_prob: 0.7,
            seed: 42,
        }
    }
}

fn sample(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if hi <= lo {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

/// Generates a random program's source text.
///
/// Generated methods only self-call method names with a strictly smaller
/// pool index, so every execution terminates; recursion and cycles are
/// covered by dedicated unit tests instead.
pub fn generate_source(cfg: &SchemaGenConfig) -> String {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = String::new();
    // Per generated class: visible fields, and (name → defining class)
    // for visible methods.
    let mut visible_fields: Vec<Vec<String>> = Vec::with_capacity(cfg.classes);
    let mut method_def: Vec<std::collections::HashMap<usize, usize>> =
        Vec::with_capacity(cfg.classes);
    let mut parents_of: Vec<Vec<usize>> = Vec::with_capacity(cfg.classes);
    let mut gfield = 0usize;

    for k in 0..cfg.classes {
        // Parents.
        let mut parents: Vec<usize> = Vec::new();
        if k > 0 && !rng.random_bool(cfg.root_prob) {
            parents.push(rng.random_range(0..k));
            if rng.random_bool(cfg.multi_parent_prob) {
                let second = rng.random_range(0..k);
                if !parents.contains(&second) {
                    parents.push(second);
                }
            }
        }
        // Inherited context. Multiple inheritance may be inconsistent for
        // C3 in rare diamond arrangements; the generator keeps parent
        // sets small and callers fall back on a fresh seed if `build`
        // rejects — see `generate_env`.
        let mut fields: Vec<String> = Vec::new();
        let mut defs: std::collections::HashMap<usize, usize> = Default::default();
        for &p in &parents {
            for f in &visible_fields[p] {
                if !fields.contains(f) {
                    fields.push(f.clone());
                }
            }
            for (&m, &c) in &method_def[p] {
                defs.entry(m).or_insert(c);
            }
        }

        write!(out, "class k{k}").unwrap();
        if !parents.is_empty() {
            let names: Vec<String> = parents.iter().map(|p| format!("k{p}")).collect();
            write!(out, " inherits {}", names.join(", ")).unwrap();
        }
        out.push_str(" {\n");

        // Fields.
        let nf = sample(&mut rng, cfg.fields_per_class);
        if nf > 0 {
            out.push_str("  fields {\n");
            for _ in 0..nf {
                let name = format!("gf{gfield}");
                gfield += 1;
                writeln!(out, "    {name}: integer;").unwrap();
                fields.push(name);
            }
            out.push_str("  }\n");
        }

        // Methods.
        let nm = sample(&mut rng, cfg.methods_per_class).min(cfg.method_pool);
        let mut chosen: Vec<usize> = (0..cfg.method_pool).collect();
        // Partial shuffle: pick nm distinct pool indices.
        for i in 0..nm {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        chosen.truncate(nm);
        chosen.sort_unstable();

        for &mi in &chosen {
            let overriding = defs.get(&mi).copied();
            write!(out, "  method m{mi}(p1) is").unwrap();
            if overriding.is_some() {
                out.push_str(" redefined as");
            }
            out.push('\n');
            let mut stmts: Vec<String> = Vec::new();
            if let Some(def_class) = overriding {
                if rng.random_bool(cfg.prefixed_call_prob) {
                    stmts.push(format!("send k{def_class}.m{mi}(p1) to self"));
                }
            }
            let ns = sample(&mut rng, cfg.stmts_per_method);
            // Callable self-targets: visible (or own, earlier-declared)
            // methods with a strictly smaller pool index.
            let mut callable: Vec<usize> = defs
                .keys()
                .copied()
                .chain(chosen.iter().copied())
                .filter(|&x| x < mi)
                .collect();
            callable.sort_unstable();
            callable.dedup();
            for s in 0..ns {
                if !callable.is_empty() && rng.random_bool(cfg.self_call_prob) {
                    let target = callable[rng.random_range(0..callable.len())];
                    stmts.push(format!("send m{target}(p1) to self"));
                } else if !fields.is_empty() {
                    let f = &fields[rng.random_range(0..fields.len())];
                    if rng.random_bool(cfg.write_prob) {
                        stmts.push(format!("{f} := {f} + p1"));
                    } else {
                        stmts.push(format!("var t{s} := {f} + p1"));
                    }
                } else {
                    stmts.push("skip".to_string());
                }
            }
            if stmts.is_empty() {
                stmts.push("skip".to_string());
            }
            for (i, s) in stmts.iter().enumerate() {
                let sep = if i + 1 == stmts.len() { "" } else { ";" };
                writeln!(out, "    {s}{sep}").unwrap();
            }
            out.push_str("  end\n");
            defs.insert(mi, k);
        }
        out.push_str("}\n\n");
        visible_fields.push(fields);
        method_def.push(defs);
        parents_of.push(parents);
    }
    out
}

/// Generates source, builds and compiles it into an [`Env`]. Retries with
/// bumped seeds on the rare C3-inconsistent multiple-inheritance draws.
pub fn generate_env(cfg: &SchemaGenConfig) -> Env {
    let mut cfg = cfg.clone();
    for _ in 0..16 {
        let src = generate_source(&cfg);
        match Env::from_source(&src) {
            Ok(env) => return env,
            Err(_) => cfg.seed = cfg.seed.wrapping_add(0x9e37_79b9),
        }
    }
    panic!("schema generation failed 16 times; config is degenerate");
}

/// Creates `per_class` instances of every class.
pub fn populate_random(env: &Env, per_class: usize) {
    for ci in env.schema.classes() {
        for _ in 0..per_class {
            env.db.create(ci.id);
        }
    }
}

/// Proportions of the three §5.2 access patterns in a workload.
#[derive(Clone, Copy, Debug)]
pub struct TxnMix {
    /// Weight of single-instance transactions.
    pub one: f64,
    /// Weight of some-of-domain transactions.
    pub some: f64,
    /// Weight of whole-domain transactions.
    pub all: f64,
}

impl Default for TxnMix {
    fn default() -> Self {
        TxnMix {
            one: 0.90,
            some: 0.08,
            all: 0.02,
        }
    }
}

/// One generated transaction.
#[derive(Clone, Debug)]
pub enum TxnOp {
    /// `send method(args)` to one instance.
    One {
        /// Receiver.
        oid: Oid,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Value>,
    },
    /// `send method(args)` to selected instances of a domain.
    Some_ {
        /// Domain root class.
        root: finecc_model::ClassId,
        /// Selected instances.
        oids: Vec<Oid>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Value>,
    },
    /// `send method(args)` to all instances of a domain.
    All {
        /// Domain root class.
        root: finecc_model::ClassId,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Value>,
    },
}

impl TxnOp {
    /// Executes the operation within a transaction.
    pub fn run(&self, scheme: &dyn CcScheme, txn: &mut Txn) -> Result<(), ExecError> {
        match self {
            TxnOp::One { oid, method, args } => scheme.send(txn, *oid, method, args).map(drop),
            TxnOp::Some_ {
                root,
                oids,
                method,
                args,
            } => scheme.send_some(txn, *root, oids, method, args).map(drop),
            TxnOp::All { root, method, args } => {
                scheme.send_all(txn, *root, method, args).map(drop)
            }
        }
    }
}

/// Workload generation parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of transactions.
    pub txns: usize,
    /// Probability an instance pick comes from the hot set.
    pub hot_frac: f64,
    /// Size of the hot set (first `hot_set` OIDs).
    pub hot_set: usize,
    /// Instances per some-of-domain transaction.
    pub some_size: usize,
    /// Access-pattern mix.
    pub mix: TxnMix,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            txns: 1000,
            hot_frac: 0.2,
            hot_set: 8,
            some_size: 3,
            mix: TxnMix::default(),
            seed: 7,
        }
    }
}

/// A generated sequence of transactions.
#[derive(Clone, Debug)]
pub struct GeneratedWorkload {
    /// The transactions, in submission order.
    pub ops: Vec<TxnOp>,
}

/// Generates a workload against a populated environment: every operation
/// targets an existing instance and a method visible on it.
pub fn generate_workload(env: &Env, cfg: &WorkloadConfig) -> GeneratedWorkload {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Candidate (instance, class) pool in a stable order.
    let mut pool: Vec<(Oid, finecc_model::ClassId)> = Vec::new();
    for ci in env.schema.classes() {
        for oid in env.db.extent(ci.id) {
            pool.push((oid, ci.id));
        }
    }
    assert!(!pool.is_empty(), "populate the database first");
    let classes_with_methods: Vec<finecc_model::ClassId> = env
        .schema
        .classes()
        .filter(|ci| !ci.methods.is_empty())
        .map(|ci| ci.id)
        .collect();

    let pick_instance = |rng: &mut StdRng| -> (Oid, finecc_model::ClassId) {
        if cfg.hot_set > 0 && rng.random_bool(cfg.hot_frac) {
            pool[rng.random_range(0..cfg.hot_set.min(pool.len()))]
        } else {
            pool[rng.random_range(0..pool.len())]
        }
    };
    let pick_method = |rng: &mut StdRng, class: finecc_model::ClassId| -> Option<(String, usize)> {
        let ms = &env.schema.class(class).methods;
        if ms.is_empty() {
            return None;
        }
        let (name, mid) = &ms[rng.random_range(0..ms.len())];
        let arity = env.schema.method(*mid).sig.params.len();
        Some((name.clone(), arity))
    };
    let args_for = |rng: &mut StdRng, arity: usize| -> Vec<Value> {
        (0..arity)
            .map(|_| Value::Int(rng.random_range(1..100)))
            .collect()
    };

    let total = cfg.mix.one + cfg.mix.some + cfg.mix.all;
    let mut ops = Vec::with_capacity(cfg.txns);
    while ops.len() < cfg.txns {
        let r = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
        if r < cfg.mix.one {
            let (oid, class) = pick_instance(&mut rng);
            let Some((method, arity)) = pick_method(&mut rng, class) else {
                continue;
            };
            let args = args_for(&mut rng, arity);
            ops.push(TxnOp::One { oid, method, args });
        } else if r < cfg.mix.one + cfg.mix.some {
            if classes_with_methods.is_empty() {
                continue;
            }
            let root = classes_with_methods[rng.random_range(0..classes_with_methods.len())];
            let Some((method, arity)) = pick_method(&mut rng, root) else {
                continue;
            };
            let extent = env.db.deep_extent(root);
            if extent.is_empty() {
                continue;
            }
            let mut oids: Vec<Oid> = (0..cfg.some_size.min(extent.len()))
                .map(|_| extent[rng.random_range(0..extent.len())])
                .collect();
            oids.sort_unstable();
            oids.dedup();
            let args = args_for(&mut rng, arity);
            ops.push(TxnOp::Some_ {
                root,
                oids,
                method,
                args,
            });
        } else {
            if classes_with_methods.is_empty() {
                continue;
            }
            let root = classes_with_methods[rng.random_range(0..classes_with_methods.len())];
            let Some((method, arity)) = pick_method(&mut rng, root) else {
                continue;
            };
            let args = args_for(&mut rng, arity);
            ops.push(TxnOp::All { root, method, args });
        }
    }
    GeneratedWorkload { ops }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SchemaGenConfig::default();
        assert_eq!(generate_source(&cfg), generate_source(&cfg));
        let mut cfg2 = cfg.clone();
        cfg2.seed = 43;
        assert_ne!(generate_source(&cfg), generate_source(&cfg2));
    }

    #[test]
    fn generated_schema_compiles() {
        for seed in 0..10 {
            let cfg = SchemaGenConfig {
                seed,
                ..SchemaGenConfig::default()
            };
            let env = generate_env(&cfg);
            assert!(env.schema.class_count() >= 1);
            assert!(env.compiled.total_modes() > 0);
        }
    }

    #[test]
    fn bigger_schemas_compile() {
        let cfg = SchemaGenConfig {
            classes: 60,
            method_pool: 12,
            seed: 5,
            ..SchemaGenConfig::default()
        };
        let env = generate_env(&cfg);
        assert_eq!(env.schema.class_count(), 60);
    }

    #[test]
    fn workload_targets_valid_methods() {
        let env = generate_env(&SchemaGenConfig::default());
        populate_random(&env, 3);
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns: 200,
                ..WorkloadConfig::default()
            },
        );
        assert_eq!(wl.ops.len(), 200);
        for op in &wl.ops {
            if let TxnOp::One { oid, method, .. } = op {
                let class = env.db.class_of(*oid).unwrap();
                assert!(
                    env.schema.resolve_method(class, method).is_some(),
                    "{method} must be visible on {oid}"
                );
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let env = generate_env(&SchemaGenConfig::default());
        populate_random(&env, 2);
        let cfg = WorkloadConfig::default();
        let a = generate_workload(&env, &cfg);
        let b = generate_workload(&env, &cfg);
        assert_eq!(format!("{:?}", a.ops), format!("{:?}", b.ops));
    }

    #[test]
    fn generated_workload_runs_under_tav() {
        use finecc_runtime::{run_txn, SchemeKind};
        let env = generate_env(&SchemaGenConfig {
            classes: 6,
            seed: 3,
            ..SchemaGenConfig::default()
        });
        populate_random(&env, 2);
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns: 50,
                seed: 11,
                ..WorkloadConfig::default()
            },
        );
        let scheme = SchemeKind::Tav.build(env);
        for op in &wl.ops {
            let out = run_txn(scheme.as_ref(), 3, |txn| op.run(scheme.as_ref(), txn));
            assert!(out.is_committed(), "op failed: {op:?}");
        }
    }
}
