//! Deterministic fault-injection scenarios: the seeded schedule
//! explorer, anomaly detection, schedule minimization, and replayable
//! repro files.
//!
//! This is the user-facing half of the `finecc-chaos` harness. A
//! [`ChaosScenario`] describes a small scripted workload — a few
//! workers hammering private cells and shared cell *pairs* through any
//! of the six schemes — plus a seed, an armed fault plane, and
//! (optionally) a recorded decision sequence to replay. [`run_chaos`]
//! executes it under the harness, serialized on virtual time, and
//! checks four invariants the schemes must uphold:
//!
//! * **Lost own write** — a transaction must observe its own earlier
//!   committed writes ([`Anomaly::LostOwnWrite`]). This is the anomaly
//!   the mvcc commit barrier (`wait_published`) exists to prevent;
//!   disabling the barrier through the fault plane
//!   (`Site::CommitPublishWait` + `FaultKind::Disable`) is the
//!   known-bug lever the regression tests explore against.
//! * **Torn pairs / unstable snapshots** — cell pairs are only ever
//!   written atomically with equal values, so a reader seeing them
//!   differ ([`Anomaly::TornPair`]) or change across two reads in one
//!   transaction ([`Anomaly::UnstableSnapshot`]) proves a broken
//!   snapshot or broken 2PL.
//! * **Watermark monotonicity** — mvcc snapshot timestamps observed in
//!   begin order must never regress ([`Anomaly::WatermarkRegression`]).
//! * **Recovery = committed prefix** — for durable scenarios the
//!   recovered store must equal the state after some prefix of the
//!   acknowledged commits, pair writes indivisible
//!   ([`Anomaly::RecoveryMismatch`]). At [`DurabilityLevel::WalSync`]
//!   a surviving process loses nothing; the check still accepts a
//!   shorter prefix after a crash fault because the poisoned log
//!   refuses the in-flight batch, which is exactly the rolled-back
//!   (never acknowledged) suffix.
//!
//! On top of the single run sit [`explore`] (sweep seeds until a
//! scenario yields an anomaly), [`minimize`] (shrink the failing
//! decision sequence while the anomaly persists), and the
//! `finecc-chaos-repro v1` file format ([`write_repro`] /
//! [`read_repro`] / [`replay_repro`]) that pins a minimized schedule
//! to disk for byte-for-byte reproduction.

use finecc_chaos::{self as chaos, ChaosOutcome, FaultKind, FaultPlan, FaultSpec, Site};
use finecc_model::{Oid, Value};
use finecc_runtime::{
    run_txn_with, CcScheme, DurabilityLevel, Env, RetryPolicy, SchemeKind, TxnOutcome,
};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The fixed scenario schema: one class, one integer field, a getter
/// and a setter. Small on purpose — the interesting state space is the
/// interleaving, not the object graph.
pub const CHAOS_SOURCE: &str = r#"
class chaos_cell {
  fields {
    val: integer;
  }
  method get_val is return val end
  method set_val(v) is val := v end
}
"#;

/// One scripted operation, each run as its own transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosOp {
    /// Write `value` to the worker's private cell.
    WriteOwn(i64),
    /// Read the private cell back; must equal the last acknowledged
    /// [`ChaosOp::WriteOwn`].
    ReadOwn,
    /// Write `value` to **both** cells of shared pair `pair`, in one
    /// transaction.
    WritePair(u32, i64),
    /// Read both cells of pair `pair` twice; all four reads must agree.
    ReadPair(u32),
}

/// An invariant violation detected by [`run_chaos`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Anomaly {
    /// A worker's read of its private cell missed its own last
    /// acknowledged committed write.
    LostOwnWrite {
        /// The worker.
        worker: u32,
        /// The value its last acknowledged write committed.
        expected: i64,
        /// What the read returned.
        got: i64,
    },
    /// The two cells of a pair — only ever written together with equal
    /// values — differed within one transaction.
    TornPair {
        /// The pair.
        pair: u32,
        /// First cell's value.
        a: i64,
        /// Second cell's value.
        b: i64,
    },
    /// A pair changed between two reads inside one transaction.
    UnstableSnapshot {
        /// The pair.
        pair: u32,
        /// The first (a, b) read.
        first: (i64, i64),
        /// The second (a, b) read.
        second: (i64, i64),
    },
    /// An mvcc snapshot timestamp observed in begin order regressed.
    WatermarkRegression {
        /// The highest snapshot timestamp observed so far.
        floor: u64,
        /// The smaller timestamp observed after it.
        observed: u64,
    },
    /// The recovered store matches no prefix of the acknowledged
    /// commit sequence.
    RecoveryMismatch {
        /// Human-readable diff (recovered cell values vs. the closest
        /// prefix).
        detail: String,
    },
    /// A recovery crashed mid-replay (crash injected at a recovery
    /// probe site) and the follow-up recovery did not reproduce the
    /// undisturbed baseline — recovery is not restartable.
    RecoveryNotRestartable {
        /// The probe site the crash was injected at.
        site: String,
        /// Which hit of that site crashed.
        hit: u64,
        /// Human-readable diff (re-recovered vs. baseline).
        detail: String,
    },
}

impl Anomaly {
    /// Stable kind slug, for aggregation (metric labels, counters).
    pub fn kind(&self) -> &'static str {
        match self {
            Anomaly::LostOwnWrite { .. } => "lost_own_write",
            Anomaly::TornPair { .. } => "torn_pair",
            Anomaly::UnstableSnapshot { .. } => "unstable_snapshot",
            Anomaly::WatermarkRegression { .. } => "watermark_regression",
            Anomaly::RecoveryMismatch { .. } => "recovery_mismatch",
            Anomaly::RecoveryNotRestartable { .. } => "recovery_not_restartable",
        }
    }
}

impl std::fmt::Display for Anomaly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Anomaly::LostOwnWrite {
                worker,
                expected,
                got,
            } => write!(
                f,
                "lost own write: worker {worker} wrote {expected}, read {got}"
            ),
            Anomaly::TornPair { pair, a, b } => {
                write!(f, "torn pair {pair}: read ({a}, {b})")
            }
            Anomaly::UnstableSnapshot {
                pair,
                first,
                second,
            } => write!(
                f,
                "unstable snapshot of pair {pair}: {first:?} then {second:?} in one txn"
            ),
            Anomaly::WatermarkRegression { floor, observed } => {
                write!(
                    f,
                    "watermark regression: snapshot ts {observed} after {floor}"
                )
            }
            Anomaly::RecoveryMismatch { detail } => write!(f, "recovery mismatch: {detail}"),
            Anomaly::RecoveryNotRestartable { site, hit, detail } => {
                write!(
                    f,
                    "recovery not restartable (crash at {site}#{hit}): {detail}"
                )
            }
        }
    }
}

/// A complete chaos scenario: workload shape, scheme, durability,
/// seed, fault plane, and (for replays) a recorded decision sequence.
#[derive(Clone, Debug)]
pub struct ChaosScenario {
    /// The scheme under test.
    pub scheme: SchemeKind,
    /// Durability level; [`DurabilityLevel::None`] skips the log and
    /// the recovery check.
    pub durability: DurabilityLevel,
    /// Log directory for durable scenarios. **Cleared before each
    /// run** (a run needs a fresh incarnation). `None` uses a
    /// process-unique temp directory that is removed afterwards.
    pub dir: Option<PathBuf>,
    /// Seed for both the op-script derivation and the schedule RNG.
    pub seed: u64,
    /// Worker threads (each with a private cell and its own script).
    pub workers: usize,
    /// Transactions per worker.
    pub ops_per_worker: usize,
    /// Shared cell pairs for torn-commit detection.
    pub pairs: usize,
    /// The armed fault plane.
    pub faults: FaultPlan,
    /// Recorded decisions to replay (empty = free seeded exploration).
    pub replay: Vec<u32>,
    /// Scheduling-seed override. The op scripts always derive from
    /// [`ChaosScenario::seed`]; the schedule RNG uses this when set.
    /// Minimized replays pin a *decorrelated* value here (see
    /// [`pinned`]) so an elided decision sequence must reproduce the
    /// anomaly on its own merits — with the original seed, the RNG
    /// tail after the replayed prefix would just replay the bug anyway
    /// and every sequence would shrink to nothing.
    pub sched_seed: Option<u64>,
    /// Retry budget per transaction.
    pub max_retries: u32,
    /// `true` runs workers under the cooperative virtual-time
    /// scheduler (fully deterministic); `false` runs them free with
    /// only the fault plane armed (real threads, real WAL flusher).
    pub scheduled: bool,
    /// Worker 0 takes an online checkpoint every this many of its ops
    /// (0 = never). Puts checkpoint writes — and their maintenance
    /// pipeline (retention, log truncation) — *inside* the scripted
    /// concurrency, so `Site::CHECKPOINT` faults fire mid-run.
    /// Schemes without online checkpoint support simply skip it.
    pub checkpoint_every: usize,
    /// After a durable run, crash a fresh recovery at **every**
    /// recovery probe site × hit and re-recover cleanly each time; a
    /// re-recovery that differs from the undisturbed baseline raises
    /// [`Anomaly::RecoveryNotRestartable`]. Recovery is read-only on
    /// disk by contract; this enforces the contract mechanically.
    pub verify_restartable: bool,
}

impl ChaosScenario {
    /// A small default scenario: 3 workers x 6 ops, one shared pair,
    /// no durability, no faults.
    pub fn new(scheme: SchemeKind, seed: u64) -> ChaosScenario {
        ChaosScenario {
            scheme,
            durability: DurabilityLevel::None,
            dir: None,
            seed,
            workers: 3,
            ops_per_worker: 6,
            pairs: 1,
            faults: FaultPlan::none(),
            replay: Vec::new(),
            sched_seed: None,
            max_retries: 8,
            scheduled: true,
            checkpoint_every: 0,
            verify_restartable: false,
        }
    }

    /// The seed actually fed to the schedule RNG.
    pub fn schedule_seed(&self) -> u64 {
        self.sched_seed.unwrap_or(self.seed)
    }

    /// The scenario with write-ahead durability at `level`, logging
    /// into a fresh temp directory.
    pub fn durable(mut self, level: DurabilityLevel) -> ChaosScenario {
        self.durability = level;
        self
    }

    /// The scenario with the given fault plane armed.
    pub fn with_faults(mut self, faults: FaultPlan) -> ChaosScenario {
        self.faults = faults;
        self
    }

    /// Derives the per-worker op scripts (a pure function of the
    /// seed and the shape — independent of scheduling).
    pub fn scripts(&self) -> Vec<Vec<ChaosOp>> {
        (0..self.workers)
            .map(|w| {
                let mut rng = self.seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1));
                let mut writes = 0i64;
                let mut script = Vec::with_capacity(self.ops_per_worker);
                for i in 0..self.ops_per_worker {
                    // Every script opens with a write so later ReadOwn
                    // ops always have a committed value to miss.
                    let roll = if i == 0 { 0 } else { splitmix(&mut rng) % 10 };
                    let op = match roll {
                        0..=2 => {
                            writes += 1;
                            ChaosOp::WriteOwn(own_value(w, writes))
                        }
                        3..=5 => ChaosOp::ReadOwn,
                        6..=7 if self.pairs > 0 => {
                            writes += 1;
                            let p = (splitmix(&mut rng) % self.pairs as u64) as u32;
                            ChaosOp::WritePair(p, own_value(w, writes))
                        }
                        _ if self.pairs > 0 => {
                            let p = (splitmix(&mut rng) % self.pairs as u64) as u32;
                            ChaosOp::ReadPair(p)
                        }
                        _ => ChaosOp::ReadOwn,
                    };
                    script.push(op);
                }
                script
            })
            .collect()
    }
}

/// Worker `w`'s `n`-th written value — globally unique so a lost or
/// misdirected write is attributable from the value alone.
fn own_value(w: usize, n: i64) -> i64 {
    (w as i64 + 1) * 1_000_000 + n
}

/// SplitMix64 step (local copy — the scenario's script derivation must
/// not share state with the harness's schedule RNG).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Everything one chaos run reports. `Eq` on purpose: the determinism
/// tests compare whole reports across runs of the same seed — there is
/// deliberately no wall-clock anything in here (time is virtual).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosReport {
    /// The recorded schedule (decisions, trace, virtual clock, crash
    /// flag) — feed `decisions` back through [`ChaosScenario::replay`]
    /// to reproduce the run.
    pub outcome: ChaosOutcome,
    /// Transactions acknowledged committed.
    pub commits: u64,
    /// Retryable aborts absorbed by the retry loops.
    pub retries: u64,
    /// Transactions that exhausted their retry budget.
    pub exhausted: u64,
    /// Transactions that failed non-retryably (e.g. lock-wait budget
    /// exceeded under the virtual-time scheduler).
    pub failed: u64,
    /// Log batches/records refused and rolled back by the fault plane
    /// (0 without durability).
    pub log_failures: u64,
    /// Mid-run online checkpoints taken ([`ChaosScenario`]'s
    /// `checkpoint_every`), each followed by checkpoint retention and
    /// log truncation.
    pub checkpoints: u64,
    /// Mid-run checkpoint attempts refused — by the fault plane or a
    /// poisoned log. Never an anomaly by itself: a failed checkpoint
    /// must leave durability intact, which the recovery check proves.
    pub checkpoint_failures: u64,
    /// Invariant violations detected, in detection order.
    pub anomalies: Vec<Anomaly>,
}

/// Tracking state shared by the workers. Updated only in plain
/// straight-line code (no yield points while the mutex is held), so
/// under the virtual-time scheduler every update is atomic with the
/// commit acknowledgement that precedes it.
struct Track {
    /// Acknowledged commits in acknowledgement order; each entry is
    /// the full (cell, value) write set of one commit, indivisible for
    /// the recovery prefix check.
    acked: Vec<Vec<(usize, i64)>>,
    /// Per-worker last acknowledged private-cell value.
    own_last: Vec<i64>,
    /// Highest mvcc snapshot timestamp observed so far.
    max_snapshot_ts: u64,
    commits: u64,
    retries: u64,
    exhausted: u64,
    failed: u64,
    checkpoints: u64,
    checkpoint_failures: u64,
    anomalies: Vec<Anomaly>,
}

impl Track {
    fn settle(&mut self, outcome: &TxnOutcome<()>) -> bool {
        match outcome {
            TxnOutcome::Committed { retries, .. } => {
                self.commits += 1;
                self.retries += u64::from(*retries);
                true
            }
            TxnOutcome::Exhausted { retries } => {
                self.exhausted += 1;
                self.retries += u64::from(*retries);
                false
            }
            TxnOutcome::Failed(_) => {
                self.failed += 1;
                false
            }
        }
    }
}

/// Runs the scenario under the chaos harness and checks the
/// invariants. See the module docs for what is detected; the returned
/// report is a pure function of the scenario for scheduled runs.
pub fn run_chaos(sc: &ChaosScenario) -> io::Result<ChaosReport> {
    let scripts = sc.scripts();
    let (dir, scratch) = durable_dir(sc)?;

    // Install before anything touches the WAL or the heap: the opening
    // thread captures the fault token, and a scheduled session forces
    // the log into inline (flusher-less) mode.
    let handle = chaos::install(chaos::ChaosConfig {
        seed: sc.schedule_seed(),
        threads: if sc.scheduled { sc.workers } else { 0 },
        faults: sc.faults.clone(),
        replay: sc.replay.clone(),
    });

    let env = Env::from_source(CHAOS_SOURCE)
        .map_err(|e| io::Error::other(format!("chaos schema: {e}")))?;
    let class = env
        .schema
        .class_by_name("chaos_cell")
        .expect("chaos schema has its cell class");
    // Private cells first, then pair cells — created before the scheme
    // is built so durable runs capture them in the genesis checkpoint.
    let own: Vec<Oid> = (0..sc.workers).map(|_| env.db.create(class)).collect();
    let pairs: Vec<(Oid, Oid)> = (0..sc.pairs)
        .map(|_| (env.db.create(class), env.db.create(class)))
        .collect();
    let cells: Vec<Oid> = own
        .iter()
        .copied()
        .chain(pairs.iter().flat_map(|&(a, b)| [a, b]))
        .collect();
    let schema = std::sync::Arc::clone(&env.schema);

    // A fault injected into the *genesis* checkpoint (hit 0 of the
    // checkpoint sites against a fresh directory) refuses startup: the
    // store never opens, nothing is ever acked, and the run
    // degenerates to the recovery check over whatever the directory
    // holds. Real (un-injected) failures still propagate.
    let scheme: Option<Box<dyn CcScheme>> = if sc.durability == DurabilityLevel::None {
        Some(sc.scheme.build(env))
    } else {
        match sc
            .scheme
            .build_durable(env, sc.durability, dir.as_ref().expect("durable dir"))
        {
            Ok(s) => Some(s),
            Err(e) if chaos::crashed() || e.to_string().contains("injected:") => None,
            Err(e) => return Err(e),
        }
    };

    let policy = RetryPolicy::with_max_retries(sc.max_retries);
    let track = Mutex::new(Track {
        acked: Vec::new(),
        own_last: vec![0; sc.workers],
        max_snapshot_ts: 0,
        commits: 0,
        retries: 0,
        exhausted: 0,
        failed: 0,
        checkpoints: 0,
        checkpoint_failures: 0,
        anomalies: Vec::new(),
    });

    if let Some(scheme) = scheme.as_deref() {
        std::thread::scope(|scope| {
            for (w, script) in scripts.iter().enumerate() {
                let track = &track;
                let own = &own;
                let pairs = &pairs;
                scope.spawn(move || {
                    // Keeps this thread registered (and the token
                    // honest) for its whole lifetime; `None` in
                    // fault-only mode. Claiming slot `w` explicitly
                    // pins the worker ↔ decision-value mapping across
                    // runs — OS thread startup order must not leak
                    // into the schedule.
                    let _worker = chaos::register_worker_as(w);
                    for (i, &op) in script.iter().enumerate() {
                        if chaos::crashed() {
                            break; // drain: the log is poisoned, stop acking
                        }
                        // Worker 0 doubles as the checkpointer: online
                        // checkpoints land between its ops, concurrent
                        // with every other worker's transactions.
                        if w == 0
                            && sc.checkpoint_every > 0
                            && i > 0
                            && i % sc.checkpoint_every == 0
                        {
                            if let Some(result) = scheme.checkpoint() {
                                let mut t = track.lock().unwrap_or_else(|e| e.into_inner());
                                match result {
                                    Ok(_) => t.checkpoints += 1,
                                    Err(_) => t.checkpoint_failures += 1,
                                }
                            }
                        }
                        run_op(scheme, policy, w, op, own, pairs, track);
                    }
                });
            }
        });
    }

    let log_failures = scheme
        .as_ref()
        .and_then(|s| s.wal_stats())
        .map_or(0, |wstats| wstats.append_failures);
    // Drop the scheme (closing the log gracefully where it is not
    // poisoned) before uninstalling the harness and recovering.
    drop(scheme);
    let outcome = handle.finish();

    let mut t = track.into_inner().unwrap_or_else(|e| e.into_inner());
    if let Some(dir) = dir.as_ref() {
        if let Some(a) = recovery_anomaly(dir, &schema, class, &cells, &t.acked, sc.scheduled)? {
            t.anomalies.push(a);
        }
        if sc.verify_restartable {
            if let Some(a) =
                restartability_anomaly(dir, &schema, class, &cells, sc.schedule_seed())?
            {
                t.anomalies.push(a);
            }
        }
    }
    if scratch {
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    Ok(ChaosReport {
        outcome,
        commits: t.commits,
        retries: t.retries,
        exhausted: t.exhausted,
        failed: t.failed,
        log_failures,
        checkpoints: t.checkpoints,
        checkpoint_failures: t.checkpoint_failures,
        anomalies: t.anomalies,
    })
}

/// Resolves (and freshens) the log directory for a durable scenario:
/// the scenario's own `dir` cleared, or a process-unique scratch
/// directory (second return: remove it afterwards).
fn durable_dir(sc: &ChaosScenario) -> io::Result<(Option<PathBuf>, bool)> {
    if sc.durability == DurabilityLevel::None {
        return Ok((None, false));
    }
    static SCRATCH: AtomicU64 = AtomicU64::new(0);
    let (dir, scratch) = match &sc.dir {
        Some(d) => (d.clone(), false),
        None => (
            std::env::temp_dir().join(format!(
                "finecc-chaos-{}-{}",
                std::process::id(),
                SCRATCH.fetch_add(1, Ordering::Relaxed)
            )),
            true,
        ),
    };
    // Each run is a fresh incarnation; stale history is rejected by
    // the attach path, so clear rather than fail.
    let _ = std::fs::remove_dir_all(&dir);
    Ok((Some(dir), scratch))
}

/// Runs one scripted op as a transaction and settles the tracking
/// state. Tracking updates happen after the commit acknowledgement
/// with no yield point in between, so under the virtual-time scheduler
/// the acked sequence is exactly the acknowledgement order.
fn run_op(
    scheme: &dyn CcScheme,
    policy: RetryPolicy,
    w: usize,
    op: ChaosOp,
    own: &[Oid],
    pairs: &[(Oid, Oid)],
    track: &Mutex<Track>,
) {
    let observe_snapshot = |txn: &finecc_runtime::Txn| {
        if let Some(ts) = txn.snapshot_ts {
            let mut t = track.lock().unwrap_or_else(|e| e.into_inner());
            if ts < t.max_snapshot_ts {
                let floor = t.max_snapshot_ts;
                t.anomalies.push(Anomaly::WatermarkRegression {
                    floor,
                    observed: ts,
                });
            } else {
                t.max_snapshot_ts = ts;
            }
        }
    };
    match op {
        ChaosOp::WriteOwn(v) => {
            let out = run_txn_with(scheme, policy, |txn| {
                observe_snapshot(txn);
                scheme.send(txn, own[w], "set_val", &[Value::Int(v)])?;
                Ok(())
            });
            let mut t = track.lock().unwrap_or_else(|e| e.into_inner());
            if t.settle(&out) {
                t.own_last[w] = v;
                t.acked.push(vec![(w, v)]);
            }
        }
        ChaosOp::ReadOwn => {
            let got = std::cell::Cell::new(0i64);
            let out = run_txn_with(scheme, policy, |txn| {
                observe_snapshot(txn);
                got.set(int(scheme.send(txn, own[w], "get_val", &[])?));
                Ok(())
            });
            let mut t = track.lock().unwrap_or_else(|e| e.into_inner());
            if t.settle(&out) {
                let expected = t.own_last[w];
                let got = got.get();
                if got != expected {
                    t.anomalies.push(Anomaly::LostOwnWrite {
                        worker: w as u32,
                        expected,
                        got,
                    });
                }
            }
        }
        ChaosOp::WritePair(p, v) => {
            let (a, b) = pairs[p as usize];
            let out = run_txn_with(scheme, policy, |txn| {
                observe_snapshot(txn);
                scheme.send(txn, a, "set_val", &[Value::Int(v)])?;
                scheme.send(txn, b, "set_val", &[Value::Int(v)])?;
                Ok(())
            });
            let mut t = track.lock().unwrap_or_else(|e| e.into_inner());
            if t.settle(&out) {
                // One indivisible acked entry: a recovery that applies
                // half of it matches no prefix.
                let base = own.len() + 2 * p as usize;
                t.acked.push(vec![(base, v), (base + 1, v)]);
            }
        }
        ChaosOp::ReadPair(p) => {
            let (a, b) = pairs[p as usize];
            let reads = std::cell::Cell::new((0i64, 0i64, 0i64, 0i64));
            let out = run_txn_with(scheme, policy, |txn| {
                observe_snapshot(txn);
                let a1 = int(scheme.send(txn, a, "get_val", &[])?);
                let b1 = int(scheme.send(txn, b, "get_val", &[])?);
                let a2 = int(scheme.send(txn, a, "get_val", &[])?);
                let b2 = int(scheme.send(txn, b, "get_val", &[])?);
                reads.set((a1, b1, a2, b2));
                Ok(())
            });
            let mut t = track.lock().unwrap_or_else(|e| e.into_inner());
            if t.settle(&out) {
                let (a1, b1, a2, b2) = reads.get();
                if a1 != b1 {
                    t.anomalies.push(Anomaly::TornPair {
                        pair: p,
                        a: a1,
                        b: b1,
                    });
                }
                if (a1, b1) != (a2, b2) {
                    t.anomalies.push(Anomaly::UnstableSnapshot {
                        pair: p,
                        first: (a1, b1),
                        second: (a2, b2),
                    });
                }
            }
        }
    }
}

fn int(v: Value) -> i64 {
    match v {
        Value::Int(i) => i,
        other => panic!("chaos_cell.val is an integer, read {other:?}"),
    }
}

/// Recovers the durable directory and checks the recovered cell values
/// against the acknowledged commit sequence. Under the virtual-time
/// scheduler (`strict`) the tracked order *is* the acknowledgement
/// order, so the recovered state must equal some exact prefix of it;
/// in fault-only mode real threads may record acknowledgements
/// slightly out of order, so the check relaxes to per-cell membership
/// (every recovered value was actually acked for that cell).
fn recovery_anomaly(
    dir: &Path,
    schema: &finecc_model::Schema,
    class: finecc_model::ClassId,
    cells: &[Oid],
    acked: &[Vec<(usize, i64)>],
    strict: bool,
) -> io::Result<Option<Anomaly>> {
    let recovered = match recovered_cells(dir, schema, class, cells) {
        Ok(r) => r,
        // No checkpoint on disk: fine iff nothing was ever acked (an
        // injected fault refused the genesis checkpoint and the store
        // never opened); with acked commits it is lost durability.
        Err(e) if is_no_checkpoint(&e) => {
            return Ok((!acked.is_empty()).then(|| Anomaly::RecoveryMismatch {
                detail: format!(
                    "no checkpoint on disk, yet {} commits were acknowledged",
                    acked.len()
                ),
            }))
        }
        Err(e) => return Err(e),
    };
    if !strict {
        for (cell, &got) in recovered.iter().enumerate() {
            let acked_here = got == 0
                || acked
                    .iter()
                    .any(|commit| commit.iter().any(|&(c, v)| c == cell && v == got));
            if !acked_here {
                return Ok(Some(Anomaly::RecoveryMismatch {
                    detail: format!("cell {cell} recovered {got}, never acked"),
                }));
            }
        }
        return Ok(None);
    }
    // Walk the acked sequence forward, comparing after every prefix.
    let mut state = vec![0i64; cells.len()];
    if state == recovered {
        return Ok(None);
    }
    for commit in acked {
        for &(cell, v) in commit {
            state[cell] = v;
        }
        if state == recovered {
            return Ok(None);
        }
    }
    Ok(Some(Anomaly::RecoveryMismatch {
        detail: format!(
            "recovered {recovered:?} matches no prefix of {} acked commits (full state {state:?})",
            acked.len()
        ),
    }))
}

/// True when the io::Error wraps [`finecc_wal::RecoveryError::NoCheckpoint`].
fn is_no_checkpoint(e: &io::Error) -> bool {
    matches!(
        finecc_wal::as_recovery_error(e),
        Some(finecc_wal::RecoveryError::NoCheckpoint { .. })
    )
}

/// Recovers the directory and reads back every scenario cell's value.
fn recovered_cells(
    dir: &Path,
    schema: &finecc_model::Schema,
    class: finecc_model::ClassId,
    cells: &[Oid],
) -> io::Result<Vec<i64>> {
    let (rdb, _info) = finecc_wal::recover_database(dir)?;
    let val = schema
        .resolve_field(class, "val")
        .expect("chaos schema has val");
    Ok(cells
        .iter()
        .map(|&oid| match rdb.read(oid, val) {
            Ok(Value::Int(i)) => i,
            other => panic!("recovered cell {oid:?} unreadable: {other:?}"),
        })
        .collect())
}

/// Per-site ceiling on the crash-at-every-hit recovery matrix. A
/// recovery touches each probe site at most once per frame (plus a
/// constant), so real scenarios exhaust their sites far below this;
/// the cap only bounds a runaway (a site that somehow never stops
/// firing would otherwise loop forever).
const RESTART_MATRIX_LIMIT: u64 = 10_000;

/// The recovery-of-recovery check: for every recovery probe site,
/// crash the first, second, third … hit of a fresh recovery (each
/// under its own fault-only harness), then recover *cleanly* and
/// compare against the undisturbed baseline. Recovery never writes to
/// the directory, so any divergence means a crashed recovery left
/// state behind — the restartability contract broken.
fn restartability_anomaly(
    dir: &Path,
    schema: &finecc_model::Schema,
    class: finecc_model::ClassId,
    cells: &[Oid],
    seed: u64,
) -> io::Result<Option<Anomaly>> {
    let baseline = match recovered_cells(dir, schema, class, cells) {
        Ok(b) => b,
        // Nothing recoverable to restart (startup was refused).
        Err(e) if is_no_checkpoint(&e) => return Ok(None),
        Err(e) => return Err(e),
    };
    for site in Site::RECOVERY {
        for hit in 0..RESTART_MATRIX_LIMIT {
            let handle = chaos::install(chaos::ChaosConfig {
                seed,
                threads: 0, // fault-only: recovery runs on this thread
                faults: FaultPlan::of([FaultSpec::once(site, hit, FaultKind::Crash)]),
                replay: Vec::new(),
            });
            let attempt = finecc_wal::recover_database(dir);
            let fired = chaos::crashed();
            let _ = handle.finish();
            match attempt {
                // The probe outlived the recovery: this site has no
                // more hits to crash, move to the next one.
                Ok(_) => break,
                Err(e) if !fired => return Err(e.into()),
                Err(_) => {
                    let again = recovered_cells(dir, schema, class, cells)?;
                    if again != baseline {
                        return Ok(Some(Anomaly::RecoveryNotRestartable {
                            site: site.name().to_string(),
                            hit,
                            detail: format!("re-recovered {again:?}, baseline {baseline:?}"),
                        }));
                    }
                }
            }
        }
    }
    Ok(None)
}

/// One anomalous seed surfaced by [`explore`], with its minimized
/// schedule.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The seed whose free exploration produced the anomaly.
    pub seed: u64,
    /// The full report of the anomalous run.
    pub report: ChaosReport,
    /// The minimized decision sequence (replay it through
    /// [`pinned`] to reproduce).
    pub minimized: Vec<u32>,
}

/// Sweeps `seeds` over fresh runs of `base` (replay cleared) until one
/// yields an anomaly, then minimizes its schedule within
/// `minimize_budget` candidate replays. Returns `None` if the whole
/// sweep is clean.
pub fn explore(
    base: &ChaosScenario,
    seeds: std::ops::Range<u64>,
    minimize_budget: usize,
) -> io::Result<Option<Finding>> {
    for seed in seeds {
        let sc = ChaosScenario {
            seed,
            replay: Vec::new(),
            ..base.clone()
        };
        let report = run_chaos(&sc)?;
        if !report.anomalies.is_empty() {
            let minimized = minimize(&sc, &report.outcome.decisions, minimize_budget);
            return Ok(Some(Finding {
                seed,
                report,
                minimized,
            }));
        }
    }
    Ok(None)
}

/// The scenario that replays `decisions` against `sc` with the RNG
/// tail decorrelated (see [`ChaosScenario::sched_seed`]): this is the
/// form minimization tests and repro files pin.
pub fn pinned(sc: &ChaosScenario, decisions: &[u32]) -> ChaosScenario {
    ChaosScenario {
        replay: decisions.to_vec(),
        sched_seed: Some(sc.schedule_seed() ^ 0x5eed_5eed_5eed_5eed),
        ..sc.clone()
    }
}

/// Shrinks a failing decision sequence: ddmin-style chunk elision,
/// keeping any candidate whose [`pinned`] replay still shows an
/// anomaly. The scheduler's tolerant replay (an unrunnable decision
/// falls back to the first runnable worker) is what makes elided
/// sequences meaningful; the decorrelated RNG tail is what keeps them
/// honest.
pub fn minimize(sc: &ChaosScenario, decisions: &[u32], budget: usize) -> Vec<u32> {
    chaos::minimize_decisions(decisions, budget, |candidate| {
        run_chaos(&pinned(sc, candidate))
            .map(|r| !r.anomalies.is_empty())
            .unwrap_or(false)
    })
}

/// Writes a `finecc-chaos-repro v1` file: the scenario shape, the
/// fault plane, and a pinned decision sequence.
pub fn write_repro(path: &Path, sc: &ChaosScenario, decisions: &[u32]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "finecc-chaos-repro v1")?;
    writeln!(f, "scheme={}", sc.scheme.name())?;
    writeln!(f, "durability={}", sc.durability.name())?;
    writeln!(f, "seed={}", sc.seed)?;
    writeln!(f, "workers={}", sc.workers)?;
    writeln!(f, "ops_per_worker={}", sc.ops_per_worker)?;
    writeln!(f, "pairs={}", sc.pairs)?;
    writeln!(f, "max_retries={}", sc.max_retries)?;
    writeln!(f, "scheduled={}", sc.scheduled)?;
    if let Some(s) = sc.sched_seed {
        writeln!(f, "sched_seed={s}")?;
    }
    // Recovery-pipeline knobs, written only when armed so files from
    // before the knobs existed stay byte-identical.
    if sc.checkpoint_every > 0 {
        writeln!(f, "checkpoint_every={}", sc.checkpoint_every)?;
    }
    if sc.verify_restartable {
        writeln!(f, "verify_restartable=true")?;
    }
    for spec in &sc.faults.specs {
        let kind = match spec.kind {
            FaultKind::Delay(ticks) => format!("delay@{ticks}"),
            other => other.name().to_string(),
        };
        let count = if spec.count == u64::MAX {
            "all".to_string()
        } else {
            spec.count.to_string()
        };
        writeln!(
            f,
            "fault={}:{kind}:{}:{count}",
            spec.site.name(),
            spec.from_hit
        )?;
    }
    let decisions: Vec<String> = decisions.iter().map(u32::to_string).collect();
    writeln!(f, "decisions={}", decisions.join(","))?;
    Ok(())
}

/// Parses a `finecc-chaos-repro v1` file back into a scenario with the
/// pinned schedule in [`ChaosScenario::replay`].
pub fn read_repro(path: &Path) -> io::Result<ChaosScenario> {
    let text = std::fs::read_to_string(path)?;
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut lines = text.lines();
    if lines.next() != Some("finecc-chaos-repro v1") {
        return Err(bad("not a finecc-chaos-repro v1 file".into()));
    }
    let mut sc = ChaosScenario::new(SchemeKind::MvccSsi, 0);
    sc.pairs = 0;
    let mut specs = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| bad(format!("malformed line: {line}")))?;
        let num = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| bad(format!("bad number in: {line}")))
        };
        match key {
            "scheme" => {
                sc.scheme = SchemeKind::ALL
                    .into_iter()
                    .find(|k| k.name() == value)
                    .ok_or_else(|| bad(format!("unknown scheme: {value}")))?;
            }
            "durability" => {
                sc.durability = [
                    DurabilityLevel::None,
                    DurabilityLevel::Wal,
                    DurabilityLevel::WalSync,
                ]
                .into_iter()
                .find(|l| l.name() == value)
                .ok_or_else(|| bad(format!("unknown durability: {value}")))?;
            }
            "seed" => sc.seed = num(value)?,
            "sched_seed" => sc.sched_seed = Some(num(value)?),
            "workers" => sc.workers = num(value)? as usize,
            "ops_per_worker" => sc.ops_per_worker = num(value)? as usize,
            "pairs" => sc.pairs = num(value)? as usize,
            "max_retries" => sc.max_retries = num(value)? as u32,
            "scheduled" => sc.scheduled = value == "true",
            "checkpoint_every" => sc.checkpoint_every = num(value)? as usize,
            "verify_restartable" => sc.verify_restartable = value == "true",
            "fault" => {
                let parts: Vec<&str> = value.split(':').collect();
                let [site, kind, from_hit, count] = parts[..] else {
                    return Err(bad(format!("malformed fault: {value}")));
                };
                let site =
                    Site::from_name(site).ok_or_else(|| bad(format!("unknown site: {site}")))?;
                let kind = match kind {
                    "io_error" => FaultKind::IoError,
                    "crash" => FaultKind::Crash,
                    "disable" => FaultKind::Disable,
                    d if d.starts_with("delay@") => FaultKind::Delay(num(&d[6..])?),
                    other => return Err(bad(format!("unknown fault kind: {other}"))),
                };
                let count = if count == "all" {
                    u64::MAX
                } else {
                    num(count)?
                };
                specs.push(FaultSpec {
                    site,
                    from_hit: num(from_hit)?,
                    count,
                    kind,
                });
            }
            "decisions" => {
                sc.replay = value
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse::<u32>()
                            .map_err(|_| bad(format!("bad decision: {s}")))
                    })
                    .collect::<io::Result<Vec<u32>>>()?;
            }
            other => return Err(bad(format!("unknown key: {other}"))),
        }
    }
    sc.faults = FaultPlan::of(specs);
    Ok(sc)
}

/// Loads a repro file and runs it: the minimized-anomaly round trip.
pub fn replay_repro(path: &Path) -> io::Result<ChaosReport> {
    run_chaos(&read_repro(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_seed_deterministic_and_open_with_a_write() {
        let sc = ChaosScenario::new(SchemeKind::Tav, 7);
        let a = sc.scripts();
        let b = sc.scripts();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        for script in &a {
            assert_eq!(script.len(), 6);
            assert!(matches!(script[0], ChaosOp::WriteOwn(_)));
        }
        let c = ChaosScenario::new(SchemeKind::Tav, 8).scripts();
        assert_ne!(a, c, "different seed, different scripts");
    }

    #[test]
    fn clean_scheduled_run_has_no_anomalies() {
        let sc = ChaosScenario::new(SchemeKind::MvccSsi, 11);
        let r = run_chaos(&sc).unwrap();
        assert!(r.anomalies.is_empty(), "{:?}", r.anomalies);
        assert!(r.commits > 0);
        assert!(!r.outcome.decisions.is_empty());
        assert!(!r.outcome.crashed);
    }

    #[test]
    fn same_seed_same_report() {
        for kind in [SchemeKind::Tav, SchemeKind::Mvcc] {
            let sc = ChaosScenario::new(kind, 23);
            let a = run_chaos(&sc).unwrap();
            let b = run_chaos(&sc).unwrap();
            assert_eq!(a, b, "{kind}: same seed must reproduce byte-for-byte");
        }
    }

    #[test]
    fn repro_files_round_trip() {
        let sc = ChaosScenario {
            scheme: SchemeKind::Mvcc,
            durability: DurabilityLevel::WalSync,
            seed: 99,
            workers: 2,
            ops_per_worker: 4,
            pairs: 2,
            max_retries: 3,
            checkpoint_every: 3,
            verify_restartable: true,
            faults: FaultPlan::of([
                FaultSpec::once(Site::WalFsync, 1, FaultKind::IoError),
                FaultSpec::always(Site::CommitPublishWait, FaultKind::Disable),
                FaultSpec::once(Site::TxnStart, 0, FaultKind::Delay(5)),
            ]),
            ..ChaosScenario::new(SchemeKind::Mvcc, 99)
        };
        let path =
            std::env::temp_dir().join(format!("finecc-repro-roundtrip-{}.txt", std::process::id()));
        write_repro(&path, &sc, &[0, 1, 1, 0, 2]).unwrap();
        let back = read_repro(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.scheme, sc.scheme);
        assert_eq!(back.durability, sc.durability);
        assert_eq!(back.seed, sc.seed);
        assert_eq!(back.workers, sc.workers);
        assert_eq!(back.ops_per_worker, sc.ops_per_worker);
        assert_eq!(back.pairs, sc.pairs);
        assert_eq!(back.max_retries, sc.max_retries);
        assert_eq!(back.checkpoint_every, 3);
        assert!(back.verify_restartable);
        assert_eq!(back.faults, sc.faults);
        assert_eq!(back.replay, vec![0, 1, 1, 0, 2]);
    }

    #[test]
    fn default_repro_files_omit_recovery_keys() {
        let sc = ChaosScenario::new(SchemeKind::Mvcc, 1);
        let path =
            std::env::temp_dir().join(format!("finecc-repro-defaults-{}.txt", std::process::id()));
        write_repro(&path, &sc, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(!text.contains("checkpoint_every"), "{text}");
        assert!(!text.contains("verify_restartable"), "{text}");
    }

    #[test]
    fn mid_run_checkpoints_stay_anomaly_free() {
        let sc = ChaosScenario {
            durability: DurabilityLevel::WalSync,
            checkpoint_every: 2,
            verify_restartable: true,
            ..ChaosScenario::new(SchemeKind::Mvcc, 41)
        };
        let r = run_chaos(&sc).unwrap();
        assert!(r.anomalies.is_empty(), "{:?}", r.anomalies);
        assert!(r.checkpoints > 0, "worker 0 checkpointed mid-run");
        assert_eq!(r.checkpoint_failures, 0);
        assert!(r.commits > 0);
    }

    #[test]
    fn crash_during_checkpoint_loses_no_acked_commit() {
        // A crash at the checkpoint fsync kills the image mid-write;
        // the log is untouched, so recovery (from the previous
        // checkpoint) must still equal the acked prefix — and staying
        // restartable while it is at it.
        let sc = ChaosScenario {
            durability: DurabilityLevel::WalSync,
            checkpoint_every: 2,
            verify_restartable: true,
            // Hit 0 is the genesis checkpoint at attach; hit 1 is the
            // first online checkpoint, mid-run.
            faults: FaultPlan::of([FaultSpec::once(Site::CkptFsync, 1, FaultKind::Crash)]),
            ..ChaosScenario::new(SchemeKind::Mvcc, 17)
        };
        let r = run_chaos(&sc).unwrap();
        assert!(r.anomalies.is_empty(), "{:?}", r.anomalies);
        assert!(r.outcome.crashed, "the injected crash fired");
        assert_eq!(r.checkpoint_failures, 1, "the checkpoint was refused");
    }

    #[test]
    fn crash_during_genesis_checkpoint_refuses_startup_cleanly() {
        // Hit 0 of a checkpoint site on a fresh directory is the
        // genesis checkpoint: the store never opens, nothing is acked,
        // and the degenerate run is still anomaly-free.
        let sc = ChaosScenario {
            durability: DurabilityLevel::WalSync,
            verify_restartable: true,
            faults: FaultPlan::of([FaultSpec::once(Site::CkptDirFsync, 0, FaultKind::Crash)]),
            ..ChaosScenario::new(SchemeKind::Mvcc, 17)
        };
        let r = run_chaos(&sc).unwrap();
        assert!(r.anomalies.is_empty(), "{:?}", r.anomalies);
        assert!(r.outcome.crashed);
        assert_eq!(r.commits, 0, "the store never came up");
    }

    #[test]
    fn checkpointed_runs_reproduce_byte_for_byte() {
        let sc = ChaosScenario {
            durability: DurabilityLevel::WalSync,
            checkpoint_every: 2,
            ..ChaosScenario::new(SchemeKind::MvccSsi, 29)
        };
        let a = run_chaos(&sc).unwrap();
        let b = run_chaos(&sc).unwrap();
        assert_eq!(a, b, "checkpoint maintenance must stay deterministic");
        assert!(a.checkpoints > 0);
    }

    #[test]
    fn recovery_prefix_check_accepts_prefixes_and_rejects_tears() {
        // Pure logic test of the prefix walker via a fabricated acked
        // sequence (the full recovery path is exercised in tests/).
        let acked = vec![vec![(0usize, 10i64)], vec![(1, 5), (2, 5)], vec![(0, 20)]];
        let states: Vec<Vec<i64>> = vec![
            vec![0, 0, 0],
            vec![10, 0, 0],
            vec![10, 5, 5],
            vec![20, 5, 5],
        ];
        for s in &states {
            let mut state = vec![0i64; 3];
            let mut matched = state == *s;
            for commit in &acked {
                for &(c, v) in commit {
                    state[c] = v;
                }
                matched |= state == *s;
            }
            assert!(matched, "{s:?} is a valid prefix");
        }
        // Half a pair applied is not a prefix.
        let torn = vec![10i64, 5, 0];
        let mut state = vec![0i64; 3];
        let mut matched = state == torn;
        for commit in &acked {
            for &(c, v) in commit {
                state[c] = v;
            }
            matched |= state == torn;
        }
        assert!(!matched, "torn pair must not match any prefix");
    }
}
