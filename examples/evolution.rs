//! Schema evolution and ad hoc commutativity — the two §3/§7 extension
//! points the paper calls out:
//!
//! 1. "methods are expected to be regularly created, deleted, or
//!    updated" → **incremental recompilation**: when a method body
//!    changes, only the classes whose late-binding resolution graph
//!    contains the changed definition are rebuilt.
//! 2. "we do not discard the use of ad hoc commutativity relations …
//!    [e.g. Escrow]" → **declared grants**: `inc`/`dec` on a counter
//!    conflict syntactically (both write `total`) but commute
//!    semantically; a validated declaration patches the generated
//!    matrix, propagating only into subclasses that don't override.
//!
//! Run with: `cargo run -p finecc --example evolution`

use finecc::core::{compile, recompile, AdHocRelations};
use finecc::lang::parser::{build_schema_from_program, parse_body, parse_program};

const SOURCE: &str = r#"
class counter {
  fields { total: integer; }
  method inc(n) is total := total + n end
  method dec(n) is total := total - n end
  method get is return total end
}

class audited inherits counter {
  fields { log: integer; }
  method inc(n) is redefined as
    send counter.inc(n) to self;
    log := log + 1
  end
}

class gauge inherits counter {
  fields { hi: integer; }
  method watermark is
    if total > hi then hi := total end
  end
}

class unrelated {
  fields { x: integer; }
  method poke is x := x + 1 end
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let prog = parse_program(SOURCE)?;
    let (schema, bodies) = build_schema_from_program(&prog)?;
    let mut compiled = compile(&schema, &bodies)?;
    let counter = schema.class_by_name("counter").unwrap();

    println!("== generated matrix of `counter` (inc/dec conflict: both write total) ==");
    println!("{}", compiled.class(counter).to_table_string());
    assert_eq!(
        compiled.class(counter).commute_names("inc", "dec"),
        Some(false)
    );

    // --- 1. Escrow-style ad hoc grant -------------------------------
    let mut adhoc = AdHocRelations::new();
    adhoc
        .declare("counter", "inc", "dec")
        .declare("counter", "inc", "inc")
        .declare("counter", "dec", "dec");
    let report = adhoc.apply(&schema, &mut compiled)?;
    println!("== after the Escrow declaration ==");
    println!("{}", compiled.class(counter).to_table_string());
    println!(
        "granted {} cells; voided in overriding subclasses: {:?}",
        report.granted.len(),
        report
            .voided_by_override
            .iter()
            .map(|(c, a, b)| format!("{}:{a}/{b}", schema.class(*c).name))
            .collect::<Vec<_>>()
    );
    // `gauge` inherits inc/dec unchanged → grant propagated.
    let gauge = schema.class_by_name("gauge").unwrap();
    assert_eq!(
        compiled.class(gauge).commute_names("inc", "dec"),
        Some(true)
    );
    // `audited` overrides inc → generated conflict stands there.
    let audited = schema.class_by_name("audited").unwrap();
    assert_eq!(
        compiled.class(audited).commute_names("inc", "dec"),
        Some(false)
    );

    // --- 2. Incremental recompilation on a body update --------------
    // The DBA rewrites `gauge.watermark` to stop reading `total`:
    let mut prog2 = prog.clone();
    let gauge_src = prog2
        .classes
        .iter_mut()
        .find(|c| c.name == "gauge")
        .unwrap();
    gauge_src.methods[0].body = parse_body("hi := hi + 1")?;
    let (schema2, bodies2) = build_schema_from_program(&prog2)?;
    let prev = compile(&schema, &bodies)?; // pristine generated artifacts
    let changed = schema2
        .class(gauge)
        .own_methods
        .iter()
        .copied()
        .find(|&m| schema2.method(m).sig.name == "watermark")
        .unwrap();

    let (next, report) = recompile(&schema2, &bodies2, &prev, &[changed])?;
    println!("== incremental recompile after editing gauge.watermark ==");
    println!(
        "rebuilt: {:?}   reused: {} classes",
        report
            .recompiled
            .iter()
            .map(|&c| schema2.class(c).name.clone())
            .collect::<Vec<_>>(),
        report.reused
    );
    assert_eq!(report.recompiled.len(), 1, "only `gauge` is affected");
    assert_eq!(report.reused, 3);

    // The new TAV no longer reads `total`, so watermark now commutes
    // with inc/dec even without ad hoc help.
    let t = next.class(gauge);
    assert_eq!(t.commute_names("watermark", "inc"), Some(true));
    println!("watermark/inc now commute: the edit widened parallelism,");
    println!("and three of four classes kept their compiled artifacts.");
    Ok(())
}
