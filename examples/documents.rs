//! A document-management domain exercising all four §5.2 access patterns:
//! single-instance messages, whole-class (deep extent) operations,
//! selected-instances-of-a-domain operations, and whole-domain
//! operations — the workload shape the paper's locking protocol was
//! designed around.
//!
//! Run with: `cargo run --example documents`

use finecc::model::{Oid, Value};
use finecc::runtime::{run_txn, CcScheme, Env, SchemeKind};

const DOCS: &str = r#"
class document {
  fields {
    title: string;
    views: integer;
    archived: boolean;
  }
  method view is
    views := views + 1
  end
  method archive is
    archived := true
  end
  method hot is
    return views > 100
  end
}

class report inherits document {
  fields {
    status: integer;
    reviewer: string;
  }
  method submit is
    status := 1
  end
  method approve(who) is
    status := 2;
    reviewer := expr(reviewer, who)
  end
  method view is redefined as
    send document.view to self;
    if status = 2 then
      skip
    end
  end
}

class memo inherits document {
  fields {
    urgent: boolean;
  }
  method escalate is
    urgent := true;
    send view to self
  end
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    let env = Env::from_source(DOCS)?;
    let document = env.schema.class_by_name("document").unwrap();
    let report = env.schema.class_by_name("report").unwrap();
    let memo = env.schema.class_by_name("memo").unwrap();

    // Populate: 4 plain documents, 3 reports, 3 memos.
    let mut docs: Vec<Oid> = Vec::new();
    for _ in 0..4 {
        docs.push(env.db.create(document));
    }
    let reports: Vec<Oid> = (0..3).map(|_| env.db.create(report)).collect();
    let memos: Vec<Oid> = (0..3).map(|_| env.db.create(memo)).collect();

    // The compiled matrix shows `approve` (report-only fields) commutes
    // with `view` on documents... but not with report.view, which reads
    // `status` through the override.
    let table = env.compiled.class(report);
    println!("== Commutativity matrix of `report` ==");
    println!("{}", table.to_table_string());
    assert_eq!(table.commute_names("approve", "archive"), Some(true));
    assert_eq!(table.commute_names("approve", "view"), Some(false));

    let scheme = SchemeKind::Tav.build(env);

    // Pattern (i): one instance.
    must(&*scheme, |txn| {
        scheme.send(txn, reports[0], "submit", &[])?;
        scheme.send(txn, reports[0], "approve", &[Value::str("alice")])
    });

    // Pattern (iii): some instances of the domain rooted at `document`.
    must(&*scheme, |txn| {
        let picked = [docs[0], reports[1], memos[0]];
        scheme
            .send_some(txn, document, &picked, "view", &[])
            .map(|r| r.into_iter().next().unwrap_or(Value::Nil))
    });

    // Pattern (ii)/(iv): all instances of the domain rooted at `memo`,
    // then an archive sweep over the whole `document` domain.
    must(&*scheme, |txn| {
        scheme
            .send_all(txn, memo, "escalate", &[])
            .map(|_| Value::Nil)
    });
    must(&*scheme, |txn| {
        scheme
            .send_all(txn, document, "archive", &[])
            .map(|_| Value::Nil)
    });

    // Check the effects.
    let env = scheme.env();
    assert_eq!(
        env.read_named(reports[0], "report", "status"),
        Value::Int(2)
    );
    assert_eq!(env.read_named(docs[0], "document", "views"), Value::Int(1));
    // memos[0] was viewed once directly and once more through `escalate`.
    assert_eq!(env.read_named(memos[0], "document", "views"), Value::Int(2));
    assert_eq!(
        env.read_named(memos[1], "memo", "urgent"),
        Value::Bool(true)
    );
    for oid in docs.iter().chain(&reports).chain(&memos) {
        assert_eq!(
            env.read_named(*oid, "document", "archived"),
            Value::Bool(true),
            "archive sweep covered the whole domain"
        );
    }

    println!("all four §5.2 access patterns executed under the TAV scheme:");
    println!("  lock stats: {:?}", scheme.stats());
    Ok(())
}

fn must(
    scheme: &dyn CcScheme,
    f: impl FnMut(&mut finecc::runtime::Txn) -> Result<Value, finecc::lang::ExecError>,
) {
    let out = run_txn(scheme, 5, f);
    assert!(out.is_committed(), "transaction must commit");
}
