//! Quickstart: compile the paper's Figure 1 and inspect every artifact
//! the compiler derives — access vectors, the late-binding resolution
//! graph, transitive access vectors, and the generated commutativity
//! matrix (Table 2) — then run a transaction under the TAV scheme.
//!
//! Run with: `cargo run --example quickstart`

use finecc::lang::parser::FIGURE1_SOURCE;
use finecc::model::Value;
use finecc::prelude::*;
use finecc::runtime::{run_txn, Env, SchemeKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the schema + method bodies and compile the CC artifacts.
    let (schema, bodies) = build_schema(FIGURE1_SOURCE)?;
    let compiled = compile(&schema, &bodies)?;

    println!("== Classical compatibility (Table 1) ==");
    println!("{}", finecc::core::mode::table1_string());

    // 2. Direct and transitive access vectors of class c2 (§4.3).
    let c2 = schema.class_by_name("c2").expect("c2 exists");
    let table = compiled.class(c2);
    let field_names: Vec<(FieldId, String)> = schema
        .class(c2)
        .all_fields
        .iter()
        .map(|&f| (f, schema.field(f).name.clone()))
        .collect();
    println!("== Access vectors of class c2 (§4.3) ==");
    for (i, name) in table.method_names.iter().enumerate() {
        let named =
            |av: &AccessVector| av.display_over(field_names.iter().map(|(f, n)| (*f, n.as_str())));
        println!("  DAV({name}) = {}", named(table.dav(i)));
        println!("  TAV({name}) = {}", named(table.tav(i)));
    }

    // 3. The late-binding resolution graph of c2 (Figure 2).
    println!("\n== Late-binding resolution graph of c2 (Figure 2) ==");
    for (from, to) in compiled.graph(c2).edge_labels(&schema) {
        println!("  {from} -> {to}");
    }

    // 4. The generated commutativity matrix (Table 2).
    println!("\n== Generated commutativity matrix of c2 (Table 2) ==");
    println!("{}", table.to_table_string());

    // The paper's punchline: m2 and m4 are both writers, yet commute.
    assert_eq!(table.commute_names("m2", "m4"), Some(true));
    assert_eq!(table.commute_names("m1", "m2"), Some(false));

    // 5. Execute a transaction under the TAV scheme.
    let env = Env::new(schema, bodies, compiled);
    let c2 = env.schema.class_by_name("c2").unwrap();
    let oid = env.db.create(c2);
    let scheme = SchemeKind::Tav.build(env);

    let outcome = run_txn(scheme.as_ref(), 3, |txn| {
        scheme.send(txn, oid, "m1", &[Value::Int(5)])
    });
    assert!(outcome.is_committed());
    println!("ran m1(5) on a fresh c2 instance:");
    println!("  f1 = {}", scheme.env().read_named(oid, "c2", "f1"));
    println!("  f4 = {}", scheme.env().read_named(oid, "c2", "f4"));
    println!(
        "  lock requests for the whole nested call: {}",
        scheme.stats().requests
    );
    Ok(())
}
