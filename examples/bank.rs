//! A bank-account hierarchy under concurrent load.
//!
//! Shows what automatic commutativity buys in a realistic domain:
//! `set_rate` (touches only the savings-specific `rate` field) commutes
//! with `deposit` (touches the inherited `balance`/`audit` fields) — the
//! paper's problem P4 in banking clothes. Under read/write locking both
//! are "writers" and serialize; under the TAV scheme they run in
//! parallel. A threaded run checks the money-conservation invariant and
//! compares lock traffic across all four schemes.
//!
//! Run with: `cargo run --example bank`

use finecc::model::Value;
use finecc::prelude::*;
use finecc::runtime::{run_txn, Env, SchemeKind};
use finecc::sim::render_table;
use std::sync::Arc;

const BANK: &str = r#"
class account {
  fields {
    owner: string;
    balance: integer;
    audit: integer;
  }
  method deposit(amt) is
    balance := balance + amt;
    send log(amt) to self
  end
  method withdraw(amt) is
    if balance >= amt then
      balance := balance - amt;
      send log(0 - amt) to self;
      return true
    end;
    return false
  end
  method log(amt) is
    audit := audit + 1
  end
  method balance_of is
    return balance
  end
}

class savings inherits account {
  fields {
    rate: integer;
    accrued: integer;
  }
  method set_rate(r) is
    rate := r
  end
  method accrue is
    accrued := accrued + balance * rate / 100
  end
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error + Send + Sync>> {
    // Compile once to show the generated matrix for `savings`.
    let (schema, bodies) = build_schema(BANK)?;
    let compiled = compile(&schema, &bodies)?;
    let savings = schema.class_by_name("savings").unwrap();
    let table = compiled.class(savings);
    println!("== Generated commutativity matrix of `savings` ==");
    println!("{}", table.to_table_string());
    assert_eq!(
        table.commute_names("deposit", "set_rate"),
        Some(true),
        "disjoint-field writers commute under TAVs"
    );
    assert_eq!(table.commute_names("deposit", "accrue"), Some(false));

    // Concurrent run per scheme: 4 threads × 250 deposits of 10 on a
    // shared pool of accounts, with rate updates mixed in.
    let mut rows = Vec::new();
    for kind in SchemeKind::ALL {
        let env = Env::from_source(BANK)?;
        let account = env.schema.class_by_name("account").unwrap();
        let savings = env.schema.class_by_name("savings").unwrap();
        let mut accounts = Vec::new();
        for _ in 0..8 {
            accounts.push(env.db.create(account));
            accounts.push(env.db.create(savings));
        }
        let accounts = Arc::new(accounts);
        let scheme: Arc<dyn finecc::runtime::CcScheme> = Arc::from(kind.build(env));

        let deposits_per_thread = 250;
        std::thread::scope(|s| {
            for t in 0..4 {
                let scheme = Arc::clone(&scheme);
                let accounts = Arc::clone(&accounts);
                s.spawn(move || {
                    for i in 0..deposits_per_thread {
                        let oid = accounts[(t * 7 + i) % accounts.len()];
                        let out = run_txn(scheme.as_ref(), 50, |txn| {
                            scheme.send(txn, oid, "deposit", &[Value::Int(10)])
                        });
                        assert!(out.is_committed(), "deposit must commit");
                        // Every 10th iteration, a rate change on a savings
                        // account (odd indices are savings).
                        if i % 10 == 0 {
                            let sav = accounts[((t * 7 + i) % accounts.len()) | 1];
                            let out = run_txn(scheme.as_ref(), 50, |txn| {
                                scheme.send(txn, sav, "set_rate", &[Value::Int(5)])
                            });
                            assert!(out.is_committed());
                        }
                    }
                });
            }
        });

        // Invariant: all deposited money is present.
        let env = scheme.env();
        let total: i64 = accounts
            .iter()
            .map(|&oid| match env.read_named(oid, "account", "balance") {
                Value::Int(v) => v,
                other => panic!("balance must be an int, got {other}"),
            })
            .sum();
        assert_eq!(total, 4 * deposits_per_thread as i64 * 10);

        let st = scheme.stats();
        rows.push(vec![
            kind.name().to_string(),
            st.requests.to_string(),
            st.blocks.to_string(),
            st.upgrades.to_string(),
            st.deadlocks.to_string(),
        ]);
    }

    println!("== 1000 deposits + rate updates, 4 threads, by scheme ==");
    println!(
        "{}",
        render_table(
            &["scheme", "lock reqs", "blocks", "upgrades", "deadlocks"],
            &rows
        )
    );
    println!("conservation invariant held under every scheme ✓");
    Ok(())
}
