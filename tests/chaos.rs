//! End-to-end tests of the deterministic fault-injection harness: same
//! seed ⇒ byte-identical runs across all six schemes, graceful
//! write-ahead log degradation, crash-recovery prefix consistency, and
//! the known-bug regression — disabling the mvcc commit barrier loses
//! an own write, which the explorer finds, minimizes, and replays from
//! a repro file.
//!
//! The harness is process-global (one installation at a time), so
//! these tests run the chaos scenarios; the serial order among them is
//! handled by the harness's own installation lock.

use finecc::chaos::{FaultKind, FaultPlan, FaultSpec, Site};
use finecc::runtime::{DurabilityLevel, SchemeKind};
use finecc::sim::chaos::{
    explore, pinned, read_repro, replay_repro, run_chaos, write_repro, Anomaly, ChaosScenario,
};

/// Same seed, same scheme ⇒ byte-identical reports (decisions, trace,
/// counters, anomalies) — for every scheme, twice each.
#[test]
fn same_seed_is_byte_identical_across_all_schemes() {
    for kind in SchemeKind::ALL {
        let sc = ChaosScenario::new(kind, 42);
        let a = run_chaos(&sc).unwrap();
        let b = run_chaos(&sc).unwrap();
        assert_eq!(a, b, "{kind}: two runs of seed 42 must be identical");
        assert_eq!(
            a.outcome.decisions, b.outcome.decisions,
            "{kind}: decision sequences must match"
        );
        assert_eq!(
            a.outcome.trace, b.outcome.trace,
            "{kind}: traces must match"
        );
        assert!(a.commits > 0, "{kind}: the workload commits");
        assert!(
            a.anomalies.is_empty(),
            "{kind}: clean run: {:?}",
            a.anomalies
        );
    }
}

/// Determinism holds with the write-ahead log in the loop too: the
/// scheduled session forces the log inline, so append order, fsyncs
/// and the recovery check are all under virtual time.
#[test]
fn durable_runs_are_deterministic_and_recover_cleanly() {
    for level in [DurabilityLevel::Wal, DurabilityLevel::WalSync] {
        for kind in [SchemeKind::Tav, SchemeKind::MvccSsi] {
            let sc = ChaosScenario::new(kind, 7).durable(level);
            let a = run_chaos(&sc).unwrap();
            let b = run_chaos(&sc).unwrap();
            assert_eq!(a, b, "{kind}/{}: durable determinism", level.name());
            assert!(
                a.anomalies.is_empty(),
                "{kind}/{}: recovery must match an acked prefix: {:?}",
                level.name(),
                a.anomalies
            );
        }
    }
}

/// A transient fsync failure on the inline commit path must surface as
/// a retryable refusal — absorbed by the retry loop, counted in the
/// log statistics, never a panic, and the workload still finishes with
/// a prefix-consistent recovery.
#[test]
fn transient_log_failure_degrades_gracefully() {
    let sc = ChaosScenario::new(SchemeKind::Tav, 5)
        .durable(DurabilityLevel::WalSync)
        .with_faults(FaultPlan::of([FaultSpec::once(
            Site::WalFsync,
            0,
            FaultKind::IoError,
        )]));
    let r = run_chaos(&sc).unwrap();
    assert_eq!(r.log_failures, 1, "exactly the injected refusal: {r:?}");
    assert!(r.retries > 0, "the refusal was retried: {r:?}");
    assert!(r.commits > 0, "the workload still commits: {r:?}");
    assert!(!r.outcome.crashed);
    assert!(r.anomalies.is_empty(), "{:?}", r.anomalies);
}

/// Same, against the real (threaded) group-commit flusher in
/// fault-only mode: a failed batch is rolled back and retried, and
/// recovery still matches an acked prefix.
#[test]
fn flusher_batch_failure_is_retryable_end_to_end() {
    let mut sc = ChaosScenario::new(SchemeKind::Rw, 3).durable(DurabilityLevel::WalSync);
    sc.scheduled = false; // real threads, real flusher
    sc.faults = FaultPlan::of([FaultSpec::once(Site::WalFlushFsync, 0, FaultKind::IoError)]);
    let r = run_chaos(&sc).unwrap();
    assert!(r.log_failures >= 1, "the batch was refused: {r:?}");
    assert!(r.commits > 0, "the workload recovered from it: {r:?}");
    assert!(r.anomalies.is_empty(), "{:?}", r.anomalies);
}

/// A crash fault mid-run poisons the log: workers drain, no panic, and
/// the recovered store equals a prefix of what was acknowledged.
#[test]
fn crash_fault_recovers_to_an_acked_prefix() {
    for kind in [SchemeKind::Tav, SchemeKind::Mvcc] {
        let sc = ChaosScenario::new(kind, 13)
            .durable(DurabilityLevel::WalSync)
            .with_faults(FaultPlan::of([FaultSpec::once(
                Site::WalAppend,
                2,
                FaultKind::Crash,
            )]));
        let r = run_chaos(&sc).unwrap();
        assert!(r.outcome.crashed, "{kind}: the crash fired: {r:?}");
        assert!(
            r.anomalies.is_empty(),
            "{kind}: recovery must still be an acked prefix: {:?}",
            r.anomalies
        );
    }
}

/// A permanently failing log exhausts the bounded retry budget instead
/// of hanging or panicking.
#[test]
fn unbounded_log_failure_exhausts_retries() {
    let sc = ChaosScenario::new(SchemeKind::Tav, 9)
        .durable(DurabilityLevel::WalSync)
        .with_faults(FaultPlan::of([FaultSpec::always(
            Site::WalFsync,
            FaultKind::IoError,
        )]));
    let r = run_chaos(&sc).unwrap();
    assert!(r.exhausted > 0, "writes must give up within budget: {r:?}");
    assert_eq!(
        r.commits as usize + r.exhausted as usize + r.failed as usize,
        // Every scripted op is accounted for (crashed drain aside —
        // no crash here).
        sc.workers * sc.ops_per_worker,
        "{r:?}"
    );
}

/// The known-bug regression: disabling the `wait_published` commit
/// barrier through the fault plane makes an mvcc transaction's own
/// committed write invisible to its next snapshot. The explorer finds
/// the anomaly, minimization keeps it reproducible, the repro file
/// round-trips, and the replay is deterministic.
#[test]
fn disabled_commit_barrier_loses_own_writes_and_replays_from_repro() {
    let base =
        ChaosScenario::new(SchemeKind::Mvcc, 0).with_faults(FaultPlan::of([FaultSpec::always(
            Site::CommitPublishWait,
            FaultKind::Disable,
        )]));
    let finding = explore(&base, 1..101, 60)
        .unwrap()
        .expect("a disabled commit barrier must lose an own write within 100 seeds");
    assert!(
        finding
            .report
            .anomalies
            .iter()
            .any(|a| matches!(a, Anomaly::LostOwnWrite { .. })),
        "{:?}",
        finding.report.anomalies
    );

    // Pin the minimized schedule to a repro file and replay it.
    let sc = pinned(
        &ChaosScenario {
            seed: finding.seed,
            ..base.clone()
        },
        &finding.minimized,
    );
    let path = std::env::temp_dir().join(format!("finecc-chaos-test-{}.repro", std::process::id()));
    write_repro(&path, &sc, &finding.minimized).unwrap();
    let parsed = read_repro(&path).unwrap();
    assert_eq!(parsed.faults, sc.faults, "fault plane survives the file");
    assert_eq!(parsed.replay, finding.minimized);
    let once = replay_repro(&path).unwrap();
    let twice = replay_repro(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(
        !once.anomalies.is_empty(),
        "the minimized repro reproduces the anomaly"
    );
    assert_eq!(once, twice, "repro replays are byte-identical");

    // And the same seeds with the barrier *enabled* are clean — the
    // anomaly is the bug lever, not the workload.
    let clean = run_chaos(&ChaosScenario::new(SchemeKind::Mvcc, finding.seed)).unwrap();
    assert!(clean.anomalies.is_empty(), "{:?}", clean.anomalies);
}

/// Delay faults are schedulable too: descheduling a worker at its
/// commit publish point is deterministic and harmless with the
/// barrier in place.
#[test]
fn delay_fault_is_deterministic_and_harmless() {
    let sc =
        ChaosScenario::new(SchemeKind::MvccSsi, 21).with_faults(FaultPlan::of([FaultSpec::once(
            Site::CommitPublish,
            1,
            FaultKind::Delay(40),
        )]));
    let a = run_chaos(&sc).unwrap();
    let b = run_chaos(&sc).unwrap();
    assert_eq!(a, b);
    assert!(a.anomalies.is_empty(), "{:?}", a.anomalies);
    assert!(a.commits > 0);
}
