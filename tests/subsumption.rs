//! Experiment E9 — the paper's claim (5): classical read/write schemes
//! are *subsumed*: a 2-mode commutativity matrix driven through the
//! paper's machinery behaves identically to the hand-written RW table.

use finecc::core::compile;
use finecc::lang::build_schema;
use finecc::lock::{
    LockManager, LockMode, ModeSource, ResourceId, RwSource, TryAcquire, READ, WRITE,
};
use finecc::model::{ClassId, Oid};

/// A schema whose only methods are a pure reader and a writer: its
/// generated commutativity matrix *is* the RW table.
const RW_AS_CLASS: &str = r#"
class cell {
  fields { v: integer; }
  method read_it is
    var t := v + 0
  end
  method write_it(x) is
    v := x
  end
}
"#;

#[test]
fn generated_matrix_equals_rw_table() {
    let (schema, bodies) = build_schema(RW_AS_CLASS).unwrap();
    let compiled = compile(&schema, &bodies).unwrap();
    let cell = schema.class_by_name("cell").unwrap();
    let t = compiled.class(cell);
    let r = t.index_of("read_it").unwrap();
    let w = t.index_of("write_it").unwrap();
    // The four cells of Table 1 restricted to {Read, Write}:
    assert!(t.commute(r, r));
    assert!(!t.commute(r, w));
    assert!(!t.commute(w, r));
    assert!(!t.commute(w, w));
}

#[test]
fn lock_manager_behaviour_is_identical() {
    let (schema, bodies) = build_schema(RW_AS_CLASS).unwrap();
    let compiled = std::sync::Arc::new(compile(&schema, &bodies).unwrap());
    let cell = schema.class_by_name("cell").unwrap();
    let t = compiled.class(cell);
    let r_mode = t.index_of("read_it").unwrap() as u16;
    let w_mode = t.index_of("write_it").unwrap() as u16;

    let commut = LockManager::new(finecc::lock::CommutSource::new(compiled));
    let rw = LockManager::new(RwSource);

    // Drive both managers through the same request script and compare
    // every grant/block decision.
    let script: Vec<(u16, u16)> = vec![
        (READ, r_mode),
        (READ, r_mode),
        (WRITE, w_mode),
        (READ, r_mode),
        (WRITE, w_mode),
    ];
    let res_rw = ResourceId::Instance(Oid(1), ClassId(0));
    let res_cm = ResourceId::Instance(Oid(1), cell);
    let mut decisions_rw = Vec::new();
    let mut decisions_cm = Vec::new();
    for &(rw_mode, cm_mode) in &script {
        let t1 = rw.begin();
        decisions_rw
            .push(rw.try_acquire(t1, res_rw, LockMode::plain(rw_mode)) == TryAcquire::Granted);
        let t2 = commut.begin();
        decisions_cm
            .push(commut.try_acquire(t2, res_cm, LockMode::plain(cm_mode)) == TryAcquire::Granted);
    }
    assert_eq!(decisions_rw, decisions_cm);
    // Readers piled up, writers bounced in both.
    assert_eq!(decisions_rw, vec![true, true, false, true, false]);
}

#[test]
fn kind_semantics_match_between_sources() {
    // Intentional/hierarchical class-lock semantics must not depend on
    // which matrix is underneath.
    let (schema, bodies) = build_schema(RW_AS_CLASS).unwrap();
    let compiled = std::sync::Arc::new(compile(&schema, &bodies).unwrap());
    let cell = schema.class_by_name("cell").unwrap();
    let t = compiled.class(cell);
    let (r, w) = (
        t.index_of("read_it").unwrap() as u16,
        t.index_of("write_it").unwrap() as u16,
    );
    let cm = finecc::lock::CommutSource::new(compiled);
    let res_cm = ResourceId::Class(cell);
    let res_rw = ResourceId::Class(ClassId(0));

    let cases = [
        (LockMode::class(r, false), LockMode::class(w, false)),
        (LockMode::class(r, true), LockMode::class(w, false)),
        (LockMode::class(r, true), LockMode::class(r, true)),
        (LockMode::class(w, true), LockMode::class(w, true)),
    ];
    let rw_cases = [
        (LockMode::class(READ, false), LockMode::class(WRITE, false)),
        (LockMode::class(READ, true), LockMode::class(WRITE, false)),
        (LockMode::class(READ, true), LockMode::class(READ, true)),
        (LockMode::class(WRITE, true), LockMode::class(WRITE, true)),
    ];
    for ((a, b), (c, d)) in cases.into_iter().zip(rw_cases) {
        assert_eq!(
            cm.compatible(&res_cm, a, b),
            RwSource.compatible(&res_rw, c, d),
            "kind semantics must coincide"
        );
    }
}
