//! Integration tests for the observability subsystem (`finecc-obs`)
//! and its wiring through the six schemes:
//!
//! * **histogram properties** — shard merging is exactly the histogram
//!   of the concatenated samples, quantile error is bounded by the log
//!   base (1/32, never an overestimate), and fully concurrent
//!   recording from 16 threads loses no counts;
//! * **contention attribution** — a skewed commit storm puts the known
//!   hot objects at the top of the heat map under every scheme, and
//!   the striped registry's totals agree *exactly* with the
//!   scheme-level counters (`blocks`, `ww_conflicts`, `ssi_aborts`,
//!   `read_retries`): the probes sit next to the counter bumps, one
//!   registry record per bump;
//! * **trace export** — a traced commit storm produces a syntactically
//!   valid Chrome `trace_event` JSON array (the format Perfetto
//!   loads), with the expected lifecycle event kinds present.

use finecc::obs::hist::SUB_BUCKETS;
use finecc::obs::{
    ContentionKind, HistSnapshot, Histogram, Obs, ObsConfig, Phase, ShardedHistogram,
};
use finecc::runtime::SchemeKind;
use finecc::sim::workload::{
    generate_env, generate_workload, populate_random, SchemaGenConfig, TxnMix, WorkloadConfig,
};
use finecc::sim::{run_concurrent, ExecConfig};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Histogram properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket counts are plain sums, so merging per-shard snapshots is
    /// lossless: dealing a sample stream across any number of shards
    /// and merging equals recording the concatenated stream flat.
    #[test]
    fn merge_of_shards_equals_concat(
        samples in proptest::collection::vec(any::<u64>(), 0..300),
        shards in 1usize..9,
    ) {
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        let flat = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            parts[i % shards].record(v);
            flat.record(v);
        }
        let mut merged = HistSnapshot::default();
        for p in &parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(&merged, &flat.snapshot());
        prop_assert_eq!(merged.count(), samples.len() as u64);
    }

    /// A reported quantile is the bucket's lower bound: never above
    /// the true value, and below by at most `value / SUB_BUCKETS`
    /// (the log base — 1/32).
    #[test]
    fn bucket_error_bounded_by_log_base(v in any::<u64>()) {
        let rep = Histogram::lower_bound(Histogram::index_of(v));
        prop_assert!(rep <= v, "bucket lower bound overestimates {v}");
        prop_assert!(
            v - rep <= v / SUB_BUCKETS as u64,
            "error {} exceeds {}/{} for {}", v - rep, v, SUB_BUCKETS, v
        );
        // The same bound must survive the full record → quantile path.
        let h = Histogram::new();
        h.record(v);
        let q = h.snapshot().value_at_quantile(1.0);
        prop_assert!(q <= v && v - q <= v / SUB_BUCKETS as u64);
    }
}

/// 16 threads hammering one sharded histogram concurrently: the merged
/// snapshot holds every count and the exact sum — nothing is lost to
/// striping or relaxed atomics.
#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: u64 = 16;
    const PER_THREAD: u64 = 20_000;
    let hist = ShardedHistogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = &hist;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record(t * PER_THREAD + i);
                }
            });
        }
    });
    let merged = hist.merged();
    let n = THREADS * PER_THREAD;
    assert_eq!(merged.count(), n, "lost samples under concurrency");
    assert_eq!(merged.max(), n - 1);
    // Sum of 0..n is exact (the running sum is not bucketed).
    assert_eq!(merged.mean(), (n * (n - 1) / 2) / n);

    // The same guarantee through the `Obs` facade's phase histograms
    // and the striped contention registry.
    let obs = Obs::new(ObsConfig::enabled());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let obs = &obs;
            scope.spawn(move || {
                for i in 0..1_000 {
                    obs.record_phase_ns(Phase::CommitTotal, i);
                    obs.contend(
                        finecc::obs::ObjKey::Instance(t % 4),
                        ContentionKind::WwConflict,
                    );
                }
            });
        }
    });
    assert_eq!(obs.phase_summary(Phase::CommitTotal).count, THREADS * 1_000);
    assert_eq!(
        obs.contention_totals()[ContentionKind::WwConflict as usize],
        THREADS * 1_000
    );
    assert_eq!(
        obs.hottest(8).iter().map(|h| h.total()).sum::<u64>(),
        THREADS * 1_000,
        "every event lands on one of the four keys"
    );
}

// ---------------------------------------------------------------------------
// Contention attribution across the schemes
// ---------------------------------------------------------------------------

/// A contentious environment: few classes with only one or two fields
/// (so most write pairs overlap and nothing commutes them apart),
/// write-heavy methods, every transaction a single send with 90% of
/// picks landing on the first `hot` instances of the stable workload
/// pool.
fn storm_env() -> finecc::runtime::Env {
    let env = generate_env(&SchemaGenConfig {
        classes: 4,
        fields_per_class: (1, 2),
        write_prob: 0.9,
        self_call_prob: 0.2,
        seed: 23,
        ..SchemaGenConfig::default()
    });
    populate_random(&env, 5);
    env
}

/// The workload generator's hot set is "the first `hot_set` OIDs" of
/// its candidate pool, built in stable class/extent order — rebuild
/// that prefix so the test knows which objects are hot by construction.
fn hot_oids(env: &finecc::runtime::Env, hot_set: usize) -> Vec<u64> {
    let mut pool = Vec::new();
    for ci in env.schema.classes() {
        for oid in env.db.extent(ci.id) {
            pool.push(oid.0);
        }
    }
    pool.truncate(hot_set);
    pool
}

fn storm_workload(env: &finecc::runtime::Env, hot_set: usize) -> Vec<finecc::sim::workload::TxnOp> {
    generate_workload(
        env,
        &WorkloadConfig {
            // Single-send transactions run in a couple of microseconds;
            // the storm needs enough of them that the 8 workers stay
            // overlapped long past spawn, or nothing ever collides.
            txns: 20_000,
            hot_frac: 0.9,
            hot_set,
            mix: TxnMix {
                one: 1.0,
                some: 0.0,
                all: 0.0,
            },
            seed: 31,
            ..WorkloadConfig::default()
        },
    )
    .ops
}

/// Skewed commit storm under every scheme: the known-hot objects must
/// dominate the heat map — the hottest instance-attributed row is a
/// hot object, and hot objects carry the majority of the
/// instance-attributed contention in the top-K. (The relational
/// baseline also blocks on relation-level resources, which have no
/// OID; those rows are exempt from the instance assertions.)
#[test]
fn hot_objects_dominate_top_k_at_every_scheme() {
    const HOT_SET: usize = 3;
    for kind in SchemeKind::ALL {
        let obs = Arc::new(Obs::new(ObsConfig::enabled()));
        let env = storm_env().with_obs(Arc::clone(&obs));
        let hot = hot_oids(&env, HOT_SET);
        let ops = storm_workload(&env, HOT_SET);
        let scheme = kind.build(env);
        let report = run_concurrent(
            scheme.as_ref(),
            &ops,
            ExecConfig {
                threads: 8,
                max_retries: 1000,
            },
        );
        assert_eq!(report.failed, 0, "{kind}: non-retryable failure");
        let total: u64 = obs.contention_totals().iter().sum();
        assert!(
            total > 0,
            "{kind}: a skewed 8-thread storm must record contention"
        );
        let top = obs.hottest(8);
        let hottest_instance = top
            .iter()
            .find(|h| h.key.oid().is_some())
            .unwrap_or_else(|| panic!("{kind}: no instance-attributed contention in top-K"));
        assert!(
            hot.contains(&hottest_instance.key.oid().unwrap()),
            "{kind}: hottest object {} is not in the known-hot set {hot:?}",
            hottest_instance.key
        );
        let (hot_events, cold_events) = top
            .iter()
            .filter_map(|h| h.key.oid().map(|oid| (oid, h.total())))
            .fold((0u64, 0u64), |(a, b), (oid, n)| {
                if hot.contains(&oid) {
                    (a + n, b)
                } else {
                    (a, b + n)
                }
            });
        assert!(
            hot_events > cold_events,
            "{kind}: hot objects carry {hot_events} of the top-K events vs {cold_events}"
        );
    }
}

/// The attribution invariant: the registry is bumped exactly where the
/// scheme-level counters are, so per-class totals must agree exactly
/// with the `ExecReport` for every scheme — no event double-counted,
/// none dropped.
#[test]
fn registry_totals_match_scheme_counters() {
    for kind in SchemeKind::ALL {
        let obs = Arc::new(Obs::new(ObsConfig::enabled()));
        let env = storm_env().with_obs(Arc::clone(&obs));
        let ops = storm_workload(&env, 4);
        let scheme = kind.build(env);
        let report = run_concurrent(
            scheme.as_ref(),
            &ops,
            ExecConfig {
                threads: 8,
                max_retries: 1000,
            },
        );
        assert_eq!(report.failed, 0, "{kind}: non-retryable failure");
        assert!(report.obs.enabled, "{kind}: obs report not wired through");
        assert_eq!(
            report.obs.contention_total(ContentionKind::LockBlock),
            report.lock.blocks,
            "{kind}: one registry record per lock block"
        );
        assert_eq!(
            report.obs.contention_total(ContentionKind::WwConflict),
            report.ww_conflicts(),
            "{kind}: one registry record per first-updater-wins refusal"
        );
        assert_eq!(
            report.obs.contention_total(ContentionKind::SsiAbort),
            report.ssi_aborts(),
            "{kind}: one registry record per SSI validation abort"
        );
        assert_eq!(
            report.obs.contention_total(ContentionKind::ReadRetry),
            report.read_retries(),
            "{kind}: one registry record per read-path revalidation retry"
        );
        // Latency side of the same report: one end-to-end sample per
        // submitted transaction, whatever its outcome.
        assert_eq!(
            report.obs.phase(Phase::TxnLatency).count,
            report.committed + report.exhausted + report.failed,
            "{kind}: one txn-latency sample per transaction"
        );
    }
}

// ---------------------------------------------------------------------------
// Trace export
// ---------------------------------------------------------------------------

/// A minimal strict JSON reader used to prove the exported trace is
/// well-formed (the workspace's vendored `serde` has no JSON backend).
/// Returns the top-level array's objects as key lists.
mod json {
    pub fn parse_array_of_objects(src: &str) -> Result<Vec<Vec<String>>, String> {
        let mut p = Parser {
            b: src.as_bytes(),
            i: 0,
        };
        p.ws();
        let rows = p.array()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at {}", p.i));
        }
        Ok(rows)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.b.get(self.i) == Some(&c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at {}", c as char, self.i))
            }
        }

        fn array(&mut self) -> Result<Vec<Vec<String>>, String> {
            self.eat(b'[')?;
            let mut rows = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b']') {
                self.i += 1;
                return Ok(rows);
            }
            loop {
                self.ws();
                rows.push(self.object()?);
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(rows);
                    }
                    _ => return Err(format!("expected ',' or ']' at {}", self.i)),
                }
            }
        }

        fn object(&mut self) -> Result<Vec<String>, String> {
            self.eat(b'{')?;
            let mut keys = Vec::new();
            self.ws();
            if self.b.get(self.i) == Some(&b'}') {
                self.i += 1;
                return Ok(keys);
            }
            loop {
                self.ws();
                keys.push(self.string()?);
                self.ws();
                self.eat(b':')?;
                self.ws();
                self.value()?;
                self.ws();
                match self.b.get(self.i) {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(keys);
                    }
                    _ => return Err(format!("expected ',' or '}}' at {}", self.i)),
                }
            }
        }

        fn value(&mut self) -> Result<(), String> {
            match self.b.get(self.i) {
                Some(b'"') => self.string().map(drop),
                Some(b'{') => self.object().map(drop),
                Some(b'[') => self.array().map(drop),
                Some(c) if c.is_ascii_digit() || *c == b'-' => {
                    let start = self.i;
                    while self
                        .b
                        .get(self.i)
                        .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
                    {
                        self.i += 1;
                    }
                    std::str::from_utf8(&self.b[start..self.i])
                        .ok()
                        .and_then(|s| s.parse::<f64>().ok())
                        .map(drop)
                        .ok_or_else(|| format!("bad number at {start}"))
                }
                _ => Err(format!("unexpected value at {}", self.i)),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.eat(b'"')?;
            let start = self.i;
            while let Some(&c) = self.b.get(self.i) {
                match c {
                    b'"' => {
                        let s = std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|e| e.to_string())?
                            .to_string();
                        self.i += 1;
                        return Ok(s);
                    }
                    b'\\' => self.i += 2,
                    _ => self.i += 1,
                }
            }
            Err("unterminated string".into())
        }
    }
}

/// A traced commit storm exports a well-formed Chrome `trace_event`
/// JSON array with the transaction-lifecycle kinds present and the
/// fields Perfetto requires on every event.
#[test]
fn traced_commit_storm_exports_chrome_trace_json() {
    let path = std::env::temp_dir().join(format!("finecc-obs-trace-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let obs = Arc::new(Obs::new(ObsConfig::with_trace(&path)));
    let env = storm_env().with_obs(Arc::clone(&obs));
    let ops = storm_workload(&env, 4);
    let scheme = SchemeKind::MvccSsi.build(env);
    let report = run_concurrent(
        scheme.as_ref(),
        &ops,
        ExecConfig {
            threads: 8,
            max_retries: 1000,
        },
    );
    assert_eq!(report.failed, 0);
    let (written, n) = obs
        .export_trace()
        .expect("export writes")
        .expect("trace is configured");
    assert_eq!(written, path);
    assert!(n > 0, "a commit storm with sample=1 emits events");

    let src = std::fs::read_to_string(&path).expect("trace file exists");
    let rows = json::parse_array_of_objects(&src)
        .unwrap_or_else(|e| panic!("trace is not valid JSON: {e}"));
    assert_eq!(rows.len(), n, "one JSON object per exported event");
    for keys in &rows {
        for required in ["name", "ph", "ts", "pid", "tid"] {
            assert!(
                keys.iter().any(|k| k == required),
                "event missing {required:?}: {keys:?}"
            );
        }
    }
    // The lifecycle kinds a commit storm must produce. (The exporter
    // writes the kind into "name"; spot-check via raw containment
    // since the mini parser only returns key lists.)
    for kind in ["begin", "commit", "read", "write"] {
        assert!(
            src.contains(&format!("\"name\":\"{kind}\"")),
            "trace has no {kind:?} events"
        );
    }
    let _ = std::fs::remove_file(&path);
}
