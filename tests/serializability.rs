//! Serializability checker: a concurrent execution under each scheme
//! must be equivalent to *some* serial execution — and under strict 2PL
//! the commit order (sequence drawn while locks are held) is such an
//! order for conflicting transactions; transactions the scheme allowed
//! to overlap were only allowed because they commute, so replaying in
//! commit order must reproduce the exact final database state.
//!
//! This is the strongest end-to-end correctness check in the suite: it
//! would catch a wrong commutativity matrix (allowing non-commuting
//! overlap), a broken lock manager, or a broken undo path.
//!
//! The mvcc scheme participates by a deliberate property of THIS schema:
//! every method's read set is contained in its own write set (the only
//! cross-object read, `peer`, is never written after setup), so every
//! snapshot-isolation anomaly would coincide with a write-write conflict
//! — which first-updater-wins refuses — and commit-timestamp order is a
//! true serialization order here. Do not add a method that reads a
//! mutable field it does not write (the write-skew shape): under mvcc
//! such a schema is serializable only modulo write skew, and this test
//! would start failing nondeterministically for mvcc alone. That
//! anomaly is pinned separately in `tests/snapshot_isolation.rs`.

use finecc::model::{Oid, Value};
use finecc::runtime::{CcScheme, Env, SchemeKind, TxnOutcome};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A mix of commuting and conflicting methods, with an override and a
/// cross-instance send thrown in.
const SCHEMA: &str = r#"
class item {
  fields { a: integer; b: integer; peer: item; }
  method add_a(n) is a := a + n end
  method add_b(n) is b := b + n end
  method mix(n) is
    a := a + b;
    send add_b(n) to self
  end
  method poke(n) is
    if peer <> nil then
      send add_a(n) to peer
    end
  end
}
class special inherits item {
  fields { c: integer; }
  method add_a(n) is redefined as
    send item.add_a(n) to self;
    c := c + 1
  end
}
"#;

#[derive(Clone, Debug)]
struct Op {
    oid_index: usize,
    method: &'static str,
    arg: i64,
}

fn build_env() -> (Env, Vec<Oid>) {
    let env = Env::from_source(SCHEMA).unwrap();
    let item = env.schema.class_by_name("item").unwrap();
    let special = env.schema.class_by_name("special").unwrap();
    let peer = env.schema.resolve_field(item, "peer").unwrap();
    let mut oids = Vec::new();
    for i in 0..6 {
        let class = if i % 2 == 0 { item } else { special };
        oids.push(env.db.create(class));
    }
    // Ring of peers for `poke`.
    for i in 0..oids.len() {
        env.db
            .write(oids[i], peer, Value::Ref(oids[(i + 1) % oids.len()]))
            .unwrap();
    }
    (env, oids)
}

fn gen_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let methods = ["add_a", "add_b", "mix", "poke"];
    (0..n)
        .map(|_| Op {
            oid_index: rng.random_range(0..6),
            method: methods[rng.random_range(0..methods.len())],
            arg: rng.random_range(1..10),
        })
        .collect()
}

fn run_op(scheme: &dyn CcScheme, oids: &[Oid], op: &Op) -> TxnOutcome<u64> {
    finecc::runtime::run_txn(scheme, 100, |txn| {
        scheme.send(txn, oids[op.oid_index], op.method, &[Value::Int(op.arg)])?;
        Ok(Value::Nil)
    })
    .value()
    .map(|_| TxnOutcome::Committed {
        value: 0,
        retries: 0,
    })
    .unwrap_or(TxnOutcome::Exhausted { retries: 0 })
}

#[test]
fn concurrent_execution_equals_commit_order_replay() {
    for kind in SchemeKind::ALL {
        let (env, oids) = build_env();
        let ops = gen_ops(42, 240);
        let scheme: Arc<dyn CcScheme> = Arc::from(kind.build(env));
        let committed: Arc<Mutex<Vec<(u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let next = Arc::new(AtomicUsize::new(0));

        std::thread::scope(|s| {
            for _ in 0..4 {
                let scheme = Arc::clone(&scheme);
                let committed = Arc::clone(&committed);
                let next = Arc::clone(&next);
                let ops = &ops;
                let oids = &oids;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ops.len() {
                        break;
                    }
                    let op = &ops[i];
                    // Inline retry loop so we capture the commit seq.
                    loop {
                        let mut txn = scheme.begin();
                        match scheme.send(
                            &mut txn,
                            oids[op.oid_index],
                            op.method,
                            &[Value::Int(op.arg)],
                        ) {
                            Ok(_) => match scheme.commit(txn) {
                                // A refused commit (mvcc-ssi validation)
                                // was already rolled back: retry whole.
                                Ok(seq) => {
                                    committed.lock().unwrap().push((seq, i));
                                    break;
                                }
                                Err(e) if e.is_deadlock() => {
                                    std::thread::yield_now();
                                }
                                Err(e) => panic!("{kind}: unexpected commit error {e}"),
                            },
                            Err(e) if e.is_deadlock() => {
                                scheme.abort(txn);
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("{kind}: unexpected error {e}"),
                        }
                    }
                });
            }
        });

        let concurrent_state = scheme.env().db.snapshot();

        // Replay serially, in commit order, on a fresh database.
        let (env2, oids2) = build_env();
        let replay: Arc<dyn CcScheme> = Arc::from(SchemeKind::Tav.build(env2));
        let mut order = committed.lock().unwrap().clone();
        assert_eq!(order.len(), ops.len(), "{kind}: every op must commit");
        order.sort_unstable();
        // Commit sequences must be unique.
        for w in order.windows(2) {
            assert_ne!(w[0].0, w[1].0, "{kind}: duplicate commit sequence");
        }
        for (_, i) in &order {
            let op = &ops[*i];
            match run_op(replay.as_ref(), &oids2, op) {
                TxnOutcome::Committed { .. } => {}
                other => panic!("replay failed: {other:?}"),
            }
        }
        let serial_state = replay.env().db.snapshot();

        assert_eq!(
            concurrent_state, serial_state,
            "{kind}: concurrent execution is not equivalent to its commit-order serialization"
        );
    }
}

#[test]
fn commit_sequences_are_monotone_per_scheme() {
    let (env, oids) = build_env();
    let scheme = SchemeKind::Tav.build(env);
    let mut last = None;
    for _ in 0..10 {
        let mut txn = scheme.begin();
        scheme
            .send(&mut txn, oids[0], "add_a", &[Value::Int(1)])
            .unwrap();
        let seq = scheme.commit(txn).unwrap();
        if let Some(prev) = last {
            assert!(seq > prev);
        }
        last = Some(seq);
    }
}
