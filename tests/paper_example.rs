//! End-to-end reproduction of every concrete artifact printed in the
//! paper: Table 1, the §4.3 worked access vectors, Figure 2, Table 2, and
//! the c1 restriction remark.

use finecc::core::{compile, AccessMode, AccessVector};
use finecc::lang::build_schema;
use finecc::lang::parser::FIGURE1_SOURCE;
use finecc::model::{FieldId, Schema};

fn fixture() -> (Schema, finecc::core::CompiledSchema) {
    let (schema, bodies) = build_schema(FIGURE1_SOURCE).expect("Figure 1 parses");
    let compiled = compile(&schema, &bodies).expect("Figure 1 compiles");
    (schema, compiled)
}

fn vector(s: &Schema, av: &AccessVector) -> Vec<(String, AccessMode)> {
    let c2 = s.class_by_name("c2").unwrap();
    s.class(c2)
        .all_fields
        .iter()
        .map(|&f| (s.field(f).name.clone(), av.mode_of(f)))
        .collect()
}

#[test]
fn table1_compatibility() {
    use AccessMode::*;
    // The exact 3×3 relation printed as Table 1.
    let expected = [
        (Null, Null, true),
        (Null, Read, true),
        (Null, Write, true),
        (Read, Null, true),
        (Read, Read, true),
        (Read, Write, false),
        (Write, Null, true),
        (Write, Read, false),
        (Write, Write, false),
    ];
    for (a, b, want) in expected {
        assert_eq!(a.compatible(b), want, "{a} vs {b}");
    }
}

#[test]
fn section_4_3_all_five_tavs() {
    use AccessMode::*;
    let (s, comp) = fixture();
    let c2 = s.class_by_name("c2").unwrap();
    let t = comp.class(c2);
    let m = |name: &str| vector(&s, t.tav(t.index_of(name).unwrap()));
    let expect = |pairs: [(&str, AccessMode); 6]| -> Vec<(String, AccessMode)> {
        pairs.iter().map(|&(n, m)| (n.to_string(), m)).collect()
    };

    assert_eq!(
        m("m3"),
        expect([
            ("f1", Null),
            ("f2", Read),
            ("f3", Read),
            ("f4", Null),
            ("f5", Null),
            ("f6", Null)
        ])
    );
    assert_eq!(
        m("m4"),
        expect([
            ("f1", Null),
            ("f2", Null),
            ("f3", Null),
            ("f4", Null),
            ("f5", Read),
            ("f6", Write)
        ])
    );
    assert_eq!(
        m("m2"),
        expect([
            ("f1", Write),
            ("f2", Read),
            ("f3", Null),
            ("f4", Write),
            ("f5", Read),
            ("f6", Null)
        ])
    );
    assert_eq!(
        m("m1"),
        expect([
            ("f1", Write),
            ("f2", Read),
            ("f3", Read),
            ("f4", Write),
            ("f5", Read),
            ("f6", Null)
        ])
    );
    // The PSC vertex (c1,m2) keeps its DAV inside c2's graph.
    let c1 = s.class_by_name("c1").unwrap();
    let m2c1 = s.resolve_method(c1, "m2").unwrap();
    assert_eq!(
        vector(&s, comp.tav_of(c2, m2c1).unwrap()),
        expect([
            ("f1", Write),
            ("f2", Read),
            ("f3", Null),
            ("f4", Null),
            ("f5", Null),
            ("f6", Null)
        ])
    );
}

#[test]
fn figure2_graph_shape() {
    let (s, comp) = fixture();
    let c2 = s.class_by_name("c2").unwrap();
    let g = comp.graph(c2);
    assert_eq!(g.vertex_count(), 5, "Figure 2 has five vertices");
    assert_eq!(g.edge_count(), 3, "Figure 2 has three edges");
    let dot = g.to_dot(&s);
    assert!(dot.contains("digraph"));
}

#[test]
fn table2_generated_matrix() {
    let (s, comp) = fixture();
    let c2 = s.class_by_name("c2").unwrap();
    let t = comp.class(c2);
    let rows = [
        ("m1", [false, false, true, true]),
        ("m2", [false, false, true, true]),
        ("m3", [true, true, true, true]),
        ("m4", [true, true, true, false]),
    ];
    for (a, row) in rows {
        for (j, want) in row.into_iter().enumerate() {
            let b = &t.method_names[j];
            assert_eq!(t.commute_names(a, b), Some(want), "Table 2 ({a},{b})");
        }
    }
}

#[test]
fn c1_matrix_is_table2_restriction() {
    let (s, comp) = fixture();
    let c1 = s.class_by_name("c1").unwrap();
    let c2 = s.class_by_name("c2").unwrap();
    let t1 = comp.class(c1);
    let t2 = comp.class(c2);
    for a in ["m1", "m2", "m3"] {
        for b in ["m1", "m2", "m3"] {
            assert_eq!(
                t1.commute_names(a, b),
                t2.commute_names(a, b),
                "restriction property at ({a},{b})"
            );
        }
    }
}

#[test]
fn paper_join_example_of_section_4_1() {
    use AccessMode::*;
    let x = FieldId(0);
    let y = FieldId(1);
    let z = FieldId(2);
    let t = FieldId(3);
    let a = AccessVector::from_pairs([(x, Write), (y, Read), (z, Read)]);
    let b = AccessVector::from_pairs([(x, Read), (t, Read)]);
    let j = a.join(&b);
    assert_eq!(
        j,
        AccessVector::from_pairs([(x, Write), (y, Read), (z, Read), (t, Read)])
    );
}

#[test]
fn fields_and_methods_counts_match_figure1() {
    let (s, _) = fixture();
    let c1 = s.class_by_name("c1").unwrap();
    let c2 = s.class_by_name("c2").unwrap();
    assert_eq!(s.class(c1).all_fields.len(), 3);
    assert_eq!(s.class(c2).all_fields.len(), 6);
    assert_eq!(s.class(c1).methods.len(), 3);
    assert_eq!(s.class(c2).methods.len(), 4);
}
