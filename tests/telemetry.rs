//! Live telemetry plane, end to end: the unified metrics registry over
//! the full scheme matrix, rotating-window correctness under a
//! concurrent recording storm, and the decaying contention ranking.
//!
//! * **Prometheus export over the matrix** — every scheme's finished
//!   run freezes into one shared registry under a `scheme` label (the
//!   exact flow of the `compare_schemes` experiment), plus the
//!   scheme's live sources via `CcScheme::register_metrics`; the text
//!   exposition render is then parsed line by line and validated:
//!   well-formed names and labels, one `# TYPE` line per metric, the
//!   stable dotted→underscore names present, per-scheme committed
//!   counts exact, and the windowed p99 gauge present and nonzero.
//! * **Window rotation loses nothing** — 16 threads hammer one phase
//!   histogram while observers force rotations; the retained window
//!   deltas plus the open tail must merge back to the cumulative
//!   histogram *exactly* (count, sum, max), because windows are
//!   boundary-snapshot differences of monotone counters, never resets.
//! * **Decay demotes stale hot spots** — an object hammered early
//!   outscores everything cumulatively, but after a few half-lives of
//!   silence a mildly-active newcomer must outrank it in
//!   `Obs::hottest` while `hottest_cumulative` still remembers the
//!   old order.

use finecc::obs::{ContentionKind, MetricsRegistry, ObjKey, Obs, ObsConfig, Phase};
use finecc::runtime::SchemeKind;
use finecc::sim::workload::{
    generate_env, generate_workload, populate_random, SchemaGenConfig, WorkloadConfig,
};
use finecc::sim::{run_concurrent, ExecConfig};
use finecc_bench::register_report_metrics;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// A minimal Prometheus text-exposition parser (names, labels, values),
// strict enough to catch a malformed render.

#[derive(Debug)]
struct PromSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses `name{k="v",...} value` (labels optional). Panics with
/// context on malformed lines — this *is* the validation.
fn parse_sample(line: &str) -> PromSample {
    let (head, value) = line.rsplit_once(' ').unwrap_or_else(|| {
        panic!("sample line has no value: {line:?}");
    });
    let value: f64 = value
        .parse()
        .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set: {line:?}"));
            let mut labels = Vec::new();
            let mut remaining = body;
            while !remaining.is_empty() {
                let (key, rest) = remaining
                    .split_once("=\"")
                    .unwrap_or_else(|| panic!("malformed label in {line:?}"));
                assert!(valid_name(key), "bad label name {key:?} in {line:?}");
                // Find the closing quote, skipping escaped characters.
                let mut val = String::new();
                let mut chars = rest.char_indices();
                let mut end = None;
                while let Some((i, c)) = chars.next() {
                    match c {
                        '\\' => {
                            let (_, esc) = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {line:?}"));
                            val.push(match esc {
                                'n' => '\n',
                                other => other,
                            });
                        }
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        c => val.push(c),
                    }
                }
                let end = end.unwrap_or_else(|| panic!("unterminated label value: {line:?}"));
                labels.push((key.to_string(), val));
                remaining = rest[end + 1..]
                    .strip_prefix(',')
                    .unwrap_or(&rest[end + 1..]);
            }
            (name.to_string(), labels)
        }
    };
    assert!(valid_name(&name), "bad metric name {name:?} in {line:?}");
    PromSample {
        name,
        labels,
        value,
    }
}

fn label<'a>(s: &'a PromSample, key: &str) -> Option<&'a str> {
    s.labels
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

// ---------------------------------------------------------------------------

/// The compare_schemes export flow, validated: all six schemes run a
/// small contentious workload, freeze their reports into one registry
/// under per-scheme labels (plus their live sources), and the
/// Prometheus render must parse cleanly with the stable names, exact
/// per-scheme committed counts, and a windowed p99 per scheme.
#[test]
fn prometheus_export_covers_the_scheme_matrix() {
    let reg = MetricsRegistry::new();
    let mut committed: BTreeMap<&'static str, u64> = BTreeMap::new();
    for kind in SchemeKind::ALL {
        let env = generate_env(&SchemaGenConfig {
            classes: 6,
            seed: 17,
            write_prob: 0.6,
            ..SchemaGenConfig::default()
        });
        populate_random(&env, 4);
        let env = env.with_obs(Arc::new(Obs::new(ObsConfig::enabled())));
        let wl = generate_workload(
            &env,
            &WorkloadConfig {
                txns: 150,
                hot_frac: 0.5,
                hot_set: 4,
                seed: 9,
                ..WorkloadConfig::default()
            },
        );
        let scheme = kind.build(env);
        let report = run_concurrent(
            scheme.as_ref(),
            &wl.ops,
            ExecConfig {
                threads: 4,
                max_retries: 100,
            },
        );
        assert_eq!(report.failed, 0, "{kind}: non-retryable failure");
        assert!(report.committed > 0, "{kind}: nothing committed");
        register_report_metrics(&reg, &[("scheme", kind.name())], &report);
        // The live path too — same names, a `source="live"` marker —
        // through the trait method every scheme implements.
        scheme.register_metrics(&reg, &[("scheme", kind.name()), ("source", "live")]);
        committed.insert(kind.name(), report.committed);
    }
    let prom = reg.render_prometheus();

    // Parse and structurally validate the whole exposition.
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<PromSample> = Vec::new();
    for line in prom.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("TYPE line has a name");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(valid_name(name), "bad TYPE name {name:?}");
            assert!(
                kind == "counter" || kind == "gauge",
                "unexpected TYPE kind {kind:?}"
            );
            assert!(typed.insert(name.to_string()), "duplicate TYPE for {name}");
        } else if !line.starts_with('#') {
            samples.push(parse_sample(line));
        }
    }
    for s in &samples {
        assert!(
            typed.contains(&s.name),
            "sample {} has no preceding # TYPE line",
            s.name
        );
    }

    // The stable names the dashboards key on, dotted → underscores.
    for name in [
        "finecc_run_committed",
        "finecc_run_txns_per_sec",
        "finecc_obs_phase_count",
        "finecc_obs_phase_p99_ns",
        "finecc_obs_phase_window_p99_ns",
        "finecc_obs_contention",
        "finecc_lock_requests",
        "finecc_mvcc_commits",
    ] {
        assert!(typed.contains(name), "stable metric {name} missing");
    }

    // Per-scheme labels: the frozen committed counter must be exact for
    // every one of the six schemes, and every scheme must expose a
    // windowed p99 for the txn phase (nonzero: real latencies).
    for kind in SchemeKind::ALL {
        let c = samples
            .iter()
            .find(|s| s.name == "finecc_run_committed" && label(s, "scheme") == Some(kind.name()))
            .unwrap_or_else(|| panic!("{kind}: no committed sample"));
        assert_eq!(c.value, committed[kind.name()] as f64, "{kind}: committed");
        let w = samples
            .iter()
            .find(|s| {
                s.name == "finecc_obs_phase_window_p99_ns"
                    && label(s, "phase") == Some("txn")
                    && label(s, "scheme") == Some(kind.name())
                    && label(s, "source").is_none()
            })
            .unwrap_or_else(|| panic!("{kind}: no windowed txn p99"));
        assert!(w.value > 0.0, "{kind}: windowed p99 is zero");
    }

    // The JSON twin renders too (hand-rolled — the vendored serde has
    // no JSON backend): an array of sample objects, one per sample.
    let json = reg.render_json();
    assert!(json.starts_with("[\n") && json.ends_with("]\n"));
    assert_eq!(json.matches("\"name\"").count(), samples.len());
}

/// Satellite: window rotation under a 16-thread recording storm. The
/// retained windows plus the open tail must merge back to the
/// cumulative histogram exactly — no sample lost or double-counted at
/// any rotation boundary, no matter how rotations interleave with
/// recorders.
#[test]
fn window_rotation_loses_no_counts_under_a_16_thread_storm() {
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 20_000;
    let obs = Arc::new(Obs::new(ObsConfig {
        window_width: Duration::from_millis(2),
        window_count: 4,
        ..ObsConfig::enabled()
    }));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let obs = Arc::clone(&obs);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    obs.record_phase_ns(Phase::CommitTotal, 100 + (t as u64 * 7 + i) % 1000);
                    if i % 4096 == 0 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            });
        }
        // An observer forcing rotations throughout the storm — ticks
        // come from readers, never recorders.
        let obs = Arc::clone(&obs);
        s.spawn(move || {
            for _ in 0..40 {
                obs.tick();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });
    obs.tick();
    let cumulative = obs.phase_summary(Phase::CommitTotal);
    assert_eq!(
        cumulative.count,
        THREADS as u64 * PER_THREAD,
        "cumulative histogram lost samples"
    );
    let windows = obs.window_deltas(Phase::CommitTotal);
    assert!(
        windows.len() >= 2,
        "storm spanned {} windows — no rotation happened",
        windows.len()
    );
    let mut merged = finecc::obs::HistSnapshot::default();
    for w in &windows {
        merged.merge(w);
    }
    // The exact expectation, computed from the recording formula: the
    // merged windows must reproduce count, sum AND max — any sample
    // lost, double-counted, or torn at a rotation boundary breaks one.
    let mut expected_sum = 0u64;
    let mut expected_max = 0u64;
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            let v = 100 + (t * 7 + i) % 1000;
            expected_sum += v;
            expected_max = expected_max.max(v);
        }
    }
    assert_eq!(
        merged.count(),
        cumulative.count,
        "merged windows dropped or double-counted samples"
    );
    assert_eq!(merged.sum(), expected_sum, "sum torn at a boundary");
    assert_eq!(merged.max(), expected_max, "max lost across a boundary");
    assert_eq!(cumulative.max, expected_max);
}

/// Satellite: an object hot early in the run decays out of
/// [`Obs::hottest`] once the workload shifts — while the cumulative
/// ranking still remembers it. Half-life is configured short so the
/// shift takes milliseconds, not the production default's seconds.
#[test]
fn formerly_hot_object_decays_out_of_the_top_k() {
    let obs = Obs::new(ObsConfig {
        half_life: Duration::from_millis(20),
        ..ObsConfig::enabled()
    });
    let early = ObjKey::Instance(1);
    let late = ObjKey::Instance(2);
    for _ in 0..400 {
        obs.contend(early, ContentionKind::LockBlock);
    }
    // Let ~10 half-lives pass: the early object's score decays by
    // ~2^-10 while its cumulative total stays put.
    std::thread::sleep(Duration::from_millis(200));
    for _ in 0..20 {
        obs.contend(late, ContentionKind::WwConflict);
    }
    let decayed = obs.hottest(2);
    assert_eq!(
        decayed.first().map(|h| h.key),
        Some(late),
        "recency ranking must favor the active object: {decayed:?}"
    );
    let cumulative = obs.hottest_cumulative(2);
    assert_eq!(
        cumulative.first().map(|h| h.key),
        Some(early),
        "cumulative ranking still remembers the early storm: {cumulative:?}"
    );
    // And the decayed score itself is ordered the same way.
    let early_row = decayed.iter().find(|h| h.key == early);
    if let Some(e) = early_row {
        assert!(
            e.score < decayed[0].score / 10.0,
            "early object's score barely decayed: {e:?} vs {:?}",
            decayed[0]
        );
    }
}
