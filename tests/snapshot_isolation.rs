//! Snapshot-isolation semantics of the mvcc scheme, pinned down against
//! the serializable lock schemes:
//!
//! * **Write skew** — the canonical SI anomaly (Berenson et al., "A
//!   Critique of ANSI SQL Isolation Levels"): two transactions each read
//!   an invariant spanning two fields and write *disjoint* fields. Under
//!   snapshot isolation both commit and the invariant breaks; under any
//!   of the four serializable lock schemes the overlap is refused. This
//!   test is a *regression contract*: it documents (and notices changes
//!   to) the anomaly that `mvcc` at `IsolationLevel::Snapshot`
//!   deliberately admits — and that `mvcc-ssi` (the same heap at
//!   `IsolationLevel::Serializable`) refuses at commit with a
//!   dangerous-structure abort, mirrored below.
//! * **Lock-free readers** — snapshot reads go through the version
//!   chains, never the lock manager: the `finecc-lock` statistics of the
//!   mvcc scheme stay identically zero while readers overlap writers.

use finecc::model::Value;
use finecc::runtime::{CcScheme, Env, SchemeKind};
use std::time::Duration;

/// Invariant: `a + b >= 1`. Each drain method re-checks the invariant
/// from its own reads before writing — correct under serial execution,
/// the classic write-skew shape under SI.
const DUO: &str = r#"
class duo {
  fields { a: integer; b: integer; }
  method drain_a is
    var s := a + b;
    if s >= 2 then
      a := a - 1
    end
  end
  method drain_b is
    var s := a + b;
    if s >= 2 then
      b := b - 1
    end
  end
  method total is
    return a + b
  end
}
"#;

fn setup(kind: SchemeKind) -> (Box<dyn CcScheme>, finecc::model::Oid) {
    let env = Env::from_source(DUO)
        .unwrap()
        // Short timeout: a lock conflict surfaces as ConcurrencyAbort
        // instead of a 10-second stall.
        .with_lock_timeout(Duration::from_millis(50));
    let duo = env.schema.class_by_name("duo").unwrap();
    let a = env.schema.resolve_field(duo, "a").unwrap();
    let b = env.schema.resolve_field(duo, "b").unwrap();
    let oid = env.db.create(duo);
    env.db.write(oid, a, Value::Int(1)).unwrap();
    env.db.write(oid, b, Value::Int(1)).unwrap();
    (kind.build(env), oid)
}

fn total(scheme: &dyn CcScheme, oid: finecc::model::Oid) -> i64 {
    let env = scheme.env();
    let a = env.read_named(oid, "duo", "a").as_int().unwrap();
    let b = env.read_named(oid, "duo", "b").as_int().unwrap();
    a + b
}

/// The documented anomaly: under snapshot isolation both drains read
/// `a + b = 2` from their snapshots, write disjoint fields, and commit —
/// first-updater-wins sees no write-write conflict. The invariant
/// `a + b >= 1` breaks.
#[test]
fn mvcc_admits_write_skew() {
    let (scheme, oid) = setup(SchemeKind::Mvcc);
    let mut t1 = scheme.begin();
    let mut t2 = scheme.begin();
    scheme.send(&mut t1, oid, "drain_a", &[]).unwrap();
    scheme
        .send(&mut t2, oid, "drain_b", &[])
        .expect("disjoint write sets: SI admits the overlap");
    scheme.commit(t1).unwrap();
    scheme.commit(t2).unwrap();
    assert_eq!(
        total(scheme.as_ref(), oid),
        0,
        "write skew: invariant broken"
    );
    let m = scheme.mvcc_stats().unwrap();
    assert_eq!(
        m.write_conflicts, 0,
        "no ww conflict was (or should be) seen"
    );
}

/// The same interleaving under every serializable lock scheme: the
/// second drain conflicts (each drain reads both fields and writes one,
/// so the lock sets overlap read-vs-write), aborts, and its retry —
/// after the first commit — re-reads `a + b = 1` and declines to drain.
#[test]
fn lock_schemes_refuse_write_skew() {
    for kind in [
        SchemeKind::Tav,
        SchemeKind::Rw,
        SchemeKind::FieldLock,
        SchemeKind::Relational,
    ] {
        let (scheme, oid) = setup(kind);
        let mut t1 = scheme.begin();
        scheme.send(&mut t1, oid, "drain_a", &[]).unwrap();
        let mut t2 = scheme.begin();
        let err = scheme
            .send(&mut t2, oid, "drain_b", &[])
            .expect_err("serializable schemes must refuse the overlap");
        assert!(
            matches!(err, finecc::lang::ExecError::ConcurrencyAbort { .. }),
            "{kind}: unexpected error {err}"
        );
        scheme.abort(t2);
        scheme.commit(t1).unwrap();
        // Retry after the winner committed: the re-read invariant stops
        // the second drain.
        let out = finecc::runtime::run_txn(scheme.as_ref(), 5, |txn| {
            scheme.send(txn, oid, "drain_b", &[])
        });
        assert!(out.is_committed(), "{kind}");
        assert_eq!(
            total(scheme.as_ref(), oid),
            1,
            "{kind}: serializable execution preserves the invariant"
        );
    }
}

/// The mirror image of [`mvcc_admits_write_skew`]: same heap, same
/// interleaving, isolation level switched to Serializable. T1 drains
/// and commits first; T2's reads then carry an outgoing
/// rw-antidependency to committed T1 (T2 read `a` under T1's newer
/// version) while its write of `b` hands T1 an outgoing edge too (T1
/// read `b`, T2 overwrites it) — committed T1 becomes an unabortable
/// pivot, so T2 must die at commit with a dangerous-structure error.
/// Its retry re-reads `a + b = 1` and declines to drain: the invariant
/// survives, serializably.
#[test]
fn mvcc_ssi_refuses_write_skew() {
    let (scheme, oid) = setup(SchemeKind::MvccSsi);
    let mut t1 = scheme.begin();
    let mut t2 = scheme.begin();
    scheme.send(&mut t1, oid, "drain_a", &[]).unwrap();
    scheme
        .commit(t1)
        .expect("no dangerous structure yet: T1 commits");
    scheme
        .send(&mut t2, oid, "drain_b", &[])
        .expect("disjoint write sets: admission is still snapshot-style");
    let err = scheme
        .commit(t2)
        .expect_err("SSI must refuse the write-skew commit");
    assert!(
        matches!(
            err,
            finecc::lang::ExecError::ConcurrencyAbort { deadlock: true, .. }
        ),
        "dangerous-structure aborts are retryable: {err}"
    );
    assert!(
        err.to_string().contains("dangerous structure"),
        "abort must name the dangerous structure: {err}"
    );
    // T2 was rolled back by the failed commit: the invariant holds.
    assert_eq!(total(scheme.as_ref(), oid), 1, "only T1's drain applied");
    // The standard retry loop re-runs T2 on a fresh snapshot; the
    // re-read invariant (a + b = 1 < 2) stops the second drain.
    let out = finecc::runtime::run_txn(scheme.as_ref(), 5, |txn| {
        scheme.send(txn, oid, "drain_b", &[])
    });
    assert!(out.is_committed());
    assert_eq!(
        total(scheme.as_ref(), oid),
        1,
        "serializable execution preserves the invariant"
    );
    let m = scheme.mvcc_stats().unwrap();
    assert_eq!(m.ssi_aborts, 1, "exactly one validation abort");
    assert_eq!(m.write_conflicts, 0, "never a ww conflict in write skew");
    assert!(m.ssi_edges > 0, "rw-antidependencies were tracked");
}

/// Both-pending interleaving: whichever order the two drains commit in,
/// the dangerous structure forms before the second commit succeeds —
/// never do both commit.
#[test]
fn mvcc_ssi_never_lets_both_skewed_drains_commit() {
    let (scheme, oid) = setup(SchemeKind::MvccSsi);
    let mut t1 = scheme.begin();
    let mut t2 = scheme.begin();
    scheme.send(&mut t1, oid, "drain_a", &[]).unwrap();
    scheme.send(&mut t2, oid, "drain_b", &[]).unwrap();
    let r1 = scheme.commit(t1);
    let r2 = scheme.commit(t2);
    assert!(
        !(r1.is_ok() && r2.is_ok()),
        "SSI admitted write skew: {r1:?} / {r2:?}"
    );
    assert!(
        total(scheme.as_ref(), oid) >= 1,
        "invariant a + b >= 1 must survive"
    );
    assert!(scheme.mvcc_stats().unwrap().ssi_aborts >= 1);
}

/// Acceptance check: snapshot readers acquire zero locks, asserted via
/// the scheme's `finecc-lock` statistics while a writer holds pending
/// versions.
#[test]
fn mvcc_readers_take_zero_locks() {
    for kind in [SchemeKind::Mvcc, SchemeKind::MvccSsi] {
        mvcc_readers_take_zero_locks_under(kind);
    }
}

/// SSI tracking only ever records — it must not add a single lock
/// request to the reader path.
fn mvcc_readers_take_zero_locks_under(kind: SchemeKind) {
    let (scheme, oid) = setup(kind);
    let mut writer = scheme.begin();
    scheme.send(&mut writer, oid, "drain_a", &[]).unwrap();
    for _ in 0..10 {
        let mut reader = scheme.begin();
        let v = scheme.send(&mut reader, oid, "total", &[]).unwrap();
        assert_eq!(v, Value::Int(2), "snapshot predates the pending drain");
        scheme.commit(reader).unwrap();
    }
    scheme.commit(writer).unwrap();
    let lock_stats = scheme.stats();
    assert_eq!(lock_stats.requests, 0, "no lock was ever requested");
    assert_eq!(lock_stats, finecc::lock::StatsSnapshot::default());
    assert!(scheme.mvcc_stats().unwrap().snapshot_reads > 0);
}
