//! Integration reproduction of the §5.2 locking-protocol walkthrough:
//! which of T1–T4 may run concurrently under each concurrency-control
//! scheme. These are the headline comparisons of the paper.

use finecc::runtime::SchemeKind;
use finecc::sim::figure1::{FIGURE1_NO_KEY_WRITE_SOURCE, FIGURE1_SOURCE};
use finecc::sim::scenario_outcomes;
use finecc::sim::TxnKind::*;

#[test]
fn paper_headline_either_t1_or_t2_with_t3_t4() {
    let o = scenario_outcomes(SchemeKind::Tav, FIGURE1_SOURCE, false);
    assert_eq!(
        o.maximal_sets,
        vec![vec![T1, T3, T4], vec![T2, T3, T4]],
        "thanks to transitive access vectors, either T1‖T3‖T4 or T2‖T3‖T4"
    );
}

#[test]
fn rw_loses_parallelism() {
    let o = scenario_outcomes(SchemeKind::Rw, FIGURE1_SOURCE, false);
    assert_eq!(o.maximal_sets, vec![vec![T1, T3], vec![T1, T4]]);
    // The sets the paper's scheme admits are strictly bigger.
    assert!(!o.admits(&[T1, T3, T4]));
    assert!(!o.admits(&[T2, T3, T4]));
}

#[test]
fn relational_is_incomparable_not_weaker() {
    let rel = scenario_outcomes(SchemeKind::Relational, FIGURE1_SOURCE, false);
    assert_eq!(rel.maximal_sets, vec![vec![T1, T3], vec![T3, T4]]);
    let rw = scenario_outcomes(SchemeKind::Rw, FIGURE1_SOURCE, false);
    // Relational admits T3‖T4 which RW refuses; RW admits T1‖T4 which
    // relational refuses: "permitted concurrent executions are
    // incomparable" (§5.2).
    assert!(rel.admits(&[T3, T4]) && !rw.admits(&[T3, T4]));
    assert!(rw.admits(&[T1, T4]) && !rel.admits(&[T1, T4]));
}

#[test]
fn tav_subsumes_both_comparisons_on_this_scenario() {
    // §5.2/§7: both kinds of separation (inheritance-predicative and
    // 1NF field grouping) are captured: every set the baselines admit
    // here, the TAV scheme admits too.
    let tav = scenario_outcomes(SchemeKind::Tav, FIGURE1_SOURCE, false);
    for kind in [SchemeKind::Rw, SchemeKind::Relational] {
        let other = scenario_outcomes(kind, FIGURE1_SOURCE, false);
        for set in &other.maximal_sets {
            assert!(
                tav.admits(set),
                "TAV must admit {set:?} admitted by {}",
                other.scheme
            );
        }
    }
}

#[test]
fn no_key_write_remark() {
    // "T1‖T3‖T4 (but not T2‖T3‖T4) would have been allowed in the
    // relational schema if m2 did not modify the key field."
    let o = scenario_outcomes(SchemeKind::Relational, FIGURE1_NO_KEY_WRITE_SOURCE, false);
    assert!(o.admits(&[T1, T3, T4]), "{:?}", o.maximal_sets);
    assert!(!o.admits(&[T2, T3, T4]), "{:?}", o.maximal_sets);
}

#[test]
fn outcome_tables_render_for_all_schemes() {
    for kind in SchemeKind::ALL {
        let o = scenario_outcomes(kind, FIGURE1_SOURCE, false);
        let table = o.to_table_string();
        assert!(table.contains("T4"));
        assert!(
            o.maximal_sets.iter().all(|s| s.len() >= 2),
            "{kind}: maximal sets must have ≥ 2 members"
        );
        // T1 and T2 both write the same c1 data: never concurrent.
        assert!(!o.admits(&[T1, T2]), "{kind} must reject T1‖T2");
    }
}
