//! Multiple inheritance end-to-end: C3 resolution must drive late
//! binding, access vectors, graphs and locking coherently. The paper
//! supports simple *and* multiple inheritance (§2.1); these are the
//! corners Figure 1 doesn't reach.

use finecc::core::compile;
use finecc::lang::build_schema;
use finecc::model::Value;
use finecc::runtime::{run_txn, Env, SchemeKind};

/// A diamond with an override on one branch: `d` inherits `work` from
/// `b` (nearest in C3 order d, b, c, a), which prefixes into `a`.
const DIAMOND: &str = r#"
class a {
  fields { base: integer; }
  method work(p) is base := base + p end
  method probe is return base end
}
class b inherits a {
  fields { left: integer; }
  method work(p) is redefined as
    send a.work(p) to self;
    left := left + 1
  end
}
class c inherits a {
  fields { right: integer; }
  method work(p) is redefined as
    send a.work(p) to self;
    right := right + 1
  end
}
class d inherits b, c {
  fields { own: integer; }
  method tally is own := own + 1 end
}
"#;

#[test]
fn c3_order_selects_the_left_override() {
    let (schema, bodies) = build_schema(DIAMOND).unwrap();
    let compiled = compile(&schema, &bodies).unwrap();
    let d = schema.class_by_name("d").unwrap();
    let b = schema.class_by_name("b").unwrap();
    // d's `work` is b's definition (nearest in the C3 linearization).
    assert_eq!(
        schema.resolve_method(d, "work"),
        schema.resolve_method(b, "work")
    );
    // Its TAV in d covers `base` (via the prefixed a.work) and `left`,
    // but NOT `right` (c's override is shadowed).
    let t = compiled.class(d);
    let work = t.index_of("work").unwrap();
    let f = |cls: &str, name: &str| {
        let c = schema.class_by_name(cls).unwrap();
        schema.resolve_field(c, name).unwrap()
    };
    use finecc::core::AccessMode::*;
    assert_eq!(t.tav(work).mode_of(f("a", "base")), Write);
    assert_eq!(t.tav(work).mode_of(f("b", "left")), Write);
    assert_eq!(t.tav(work).mode_of(f("c", "right")), Null);
    assert_eq!(t.tav(work).mode_of(f("d", "own")), Null);
}

#[test]
fn diamond_commutativity_and_execution() {
    let (schema, bodies) = build_schema(DIAMOND).unwrap();
    let compiled = compile(&schema, &bodies).unwrap();
    let d = schema.class_by_name("d").unwrap();
    let t = compiled.class(d);
    // `tally` touches only d's own field: commutes with `work`.
    assert_eq!(t.commute_names("tally", "work"), Some(true));
    assert_eq!(t.commute_names("work", "probe"), Some(false));

    // Execute under the TAV scheme: both writers on one instance at once.
    let env = Env::new(schema, bodies, compiled);
    let d = env.schema.class_by_name("d").unwrap();
    let oid = env.db.create(d);
    let scheme = SchemeKind::Tav.build(env);
    let mut t1 = scheme.begin();
    let mut t2 = scheme.begin();
    scheme.send(&mut t1, oid, "work", &[Value::Int(5)]).unwrap();
    scheme.send(&mut t2, oid, "tally", &[]).unwrap();
    scheme.commit(t1).unwrap();
    scheme.commit(t2).unwrap();
    let env = scheme.env();
    assert_eq!(env.read_named(oid, "a", "base"), Value::Int(5));
    assert_eq!(env.read_named(oid, "b", "left"), Value::Int(1));
    assert_eq!(env.read_named(oid, "c", "right"), Value::Int(0));
    assert_eq!(env.read_named(oid, "d", "own"), Value::Int(1));
    assert_eq!(scheme.stats().blocks, 0);
}

#[test]
fn domain_locking_spans_both_branches() {
    let (schema, bodies) = build_schema(DIAMOND).unwrap();
    let compiled = compile(&schema, &bodies).unwrap();
    let env = Env::new(schema, bodies, compiled);
    let a = env.schema.class_by_name("a").unwrap();
    for name in ["a", "b", "c", "d"] {
        let c = env.schema.class_by_name(name).unwrap();
        env.db.create(c);
    }
    // domain(a) = {a,b,c,d}; a whole-domain `work` touches all four.
    assert_eq!(env.schema.domain(a).len(), 4);
    let scheme = SchemeKind::Tav.build(env);
    let out = run_txn(scheme.as_ref(), 3, |txn| {
        scheme
            .send_all(txn, a, "work", &[Value::Int(1)])
            .map(|r| Value::Int(r.len() as i64))
    });
    assert_eq!(out.value(), Some(Value::Int(4)));
}

#[test]
fn prefixed_call_across_mi_uses_named_branch() {
    // `d2` overrides work and explicitly prefixes into `c` (the right
    // branch), bypassing C3's preference for `b`.
    let src = format!(
        "{DIAMOND}
class d2 inherits b, c {{
  method work(p) is redefined as
    send c.work(p) to self
  end
}}"
    );
    let (schema, bodies) = build_schema(&src).unwrap();
    let compiled = compile(&schema, &bodies).unwrap();
    let d2 = schema.class_by_name("d2").unwrap();
    let t = compiled.class(d2);
    let work = t.index_of("work").unwrap();
    let f = |cls: &str, name: &str| {
        let c = schema.class_by_name(cls).unwrap();
        schema.resolve_field(c, name).unwrap()
    };
    use finecc::core::AccessMode::*;
    // Through c.work: base and right written, left untouched.
    assert_eq!(t.tav(work).mode_of(f("a", "base")), Write);
    assert_eq!(t.tav(work).mode_of(f("c", "right")), Write);
    assert_eq!(t.tav(work).mode_of(f("b", "left")), Null);

    // And it executes accordingly.
    let env = Env::new(schema, bodies, compiled);
    let d2 = env.schema.class_by_name("d2").unwrap();
    let oid = env.db.create(d2);
    let scheme = SchemeKind::Tav.build(env);
    let out = run_txn(scheme.as_ref(), 3, |txn| {
        scheme.send(txn, oid, "work", &[Value::Int(2)])
    });
    assert!(out.is_committed());
    let env = scheme.env();
    assert_eq!(env.read_named(oid, "c", "right"), Value::Int(1));
    assert_eq!(env.read_named(oid, "b", "left"), Value::Int(0));
}

#[test]
fn relational_mapping_under_mi() {
    // Each class's local fields are a relation; a d-instance spans four.
    let (schema, bodies) = build_schema(DIAMOND).unwrap();
    let compiled = compile(&schema, &bodies).unwrap();
    let env = Env::new(schema, bodies, compiled);
    let d = env.schema.class_by_name("d").unwrap();
    let oid = env.db.create(d);
    let scheme = SchemeKind::Relational.build(env);
    let out = run_txn(scheme.as_ref(), 3, |txn| {
        scheme.send(txn, oid, "work", &[Value::Int(3)])
    });
    assert!(out.is_committed());
    assert_eq!(scheme.env().read_named(oid, "a", "base"), Value::Int(3));
}
