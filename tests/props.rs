//! Property-based tests over randomly generated schemas: the algebraic
//! invariants of the paper's construction must hold for *every* program,
//! not just Figure 1.

use finecc::core::{AccessMode, AccessVector};
use finecc::model::{FieldId, FieldType, Oid, SchemaBuilder, TxnId, Value};
use finecc::mvcc::{IsolationLevel, MvccHeap, MvccWriteError};
use finecc::sim::workload::{generate_env, SchemaGenConfig};
use finecc::store::Database;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

fn cfg_strategy() -> impl Strategy<Value = SchemaGenConfig> {
    (
        1usize..14,
        any::<u64>(),
        0usize..5,
        1usize..6,
        0.0f64..1.0,
        0.0f64..0.8,
    )
        .prop_map(
            |(classes, seed, min_f, methods_hi, write_prob, self_call_prob)| SchemaGenConfig {
                classes,
                seed,
                fields_per_class: (min_f, min_f + 3),
                methods_per_class: (1, methods_hi),
                write_prob,
                self_call_prob,
                ..SchemaGenConfig::default()
            },
        )
}

/// One step of a randomly interleaved multi-transaction MVCC history
/// over four transaction slots and six objects.
#[derive(Clone, Debug)]
enum MvccStep {
    /// Write `val` to object `oid` in slot `slot`'s open transaction
    /// (opening one if needed).
    Write { slot: usize, oid: usize, val: i64 },
    /// Commit slot's open transaction, if any.
    Commit(usize),
    /// Abort slot's open transaction, if any.
    Abort(usize),
}

fn mvcc_step_strategy() -> impl Strategy<Value = MvccStep> {
    prop_oneof![
        (0usize..4, 0usize..6, -100i64..100).prop_map(|(slot, oid, val)| MvccStep::Write {
            slot,
            oid,
            val
        }),
        (0usize..4).prop_map(MvccStep::Commit),
        (0usize..4).prop_map(MvccStep::Abort),
    ]
}

/// A one-class fixture for driving the version heap directly.
fn mvcc_fixture(objects: usize) -> (Arc<MvccHeap>, Vec<Oid>, FieldId) {
    mvcc_fixture_at(IsolationLevel::Snapshot, objects)
}

/// Same fixture at an explicit isolation level.
fn mvcc_fixture_at(level: IsolationLevel, objects: usize) -> (Arc<MvccHeap>, Vec<Oid>, FieldId) {
    let mut b = SchemaBuilder::new();
    b.class("obj").field("v", FieldType::Int);
    let schema = Arc::new(b.finish().unwrap());
    let db = Arc::new(Database::new(Arc::clone(&schema)));
    let heap = Arc::new(MvccHeap::with_isolation(db, level));
    let class = schema.class_by_name("obj").unwrap();
    let field = schema.resolve_field(class, "v").unwrap();
    let oids: Vec<Oid> = (0..objects).map(|_| heap.base().create(class)).collect();
    (heap, oids, field)
}

/// One step of a randomly interleaved read/write MVCC history over four
/// transaction slots and five objects, for the SSI serializability
/// property.
#[derive(Clone, Debug)]
enum SsiStep {
    /// Read object `oid` in slot `slot`'s open transaction.
    Read { slot: usize, oid: usize },
    /// Write `val` to object `oid` in slot `slot`'s open transaction.
    Write { slot: usize, oid: usize, val: i64 },
    /// Commit slot's open transaction, if any.
    Commit(usize),
    /// Abort slot's open transaction, if any.
    Abort(usize),
}

fn ssi_step_strategy() -> impl Strategy<Value = SsiStep> {
    // The Read and Write arms appear twice ON PURPOSE: the vendored
    // proptest has no weighted prop_oneof!, and duplication gives the
    // 2:2:1:1 read/write-vs-commit/abort mix that keeps transactions
    // alive long enough to interleave.
    prop_oneof![
        (0usize..4, 0usize..5).prop_map(|(slot, oid)| SsiStep::Read { slot, oid }),
        (0usize..4, 0usize..5, -100i64..100).prop_map(|(slot, oid, val)| SsiStep::Write {
            slot,
            oid,
            val
        }),
        (0usize..4, 0usize..5).prop_map(|(slot, oid)| SsiStep::Read { slot, oid }),
        (0usize..4, 0usize..5, -100i64..100).prop_map(|(slot, oid, val)| SsiStep::Write {
            slot,
            oid,
            val
        }),
        (0usize..4).prop_map(SsiStep::Commit),
        (0usize..4).prop_map(SsiStep::Abort),
    ]
}

fn av_strategy() -> impl Strategy<Value = AccessVector> {
    proptest::collection::vec((0u32..24, 0u8..3), 0..12).prop_map(|pairs| {
        AccessVector::from_pairs(pairs.into_iter().map(|(f, m)| {
            let mode = match m {
                0 => AccessMode::Null,
                1 => AccessMode::Read,
                _ => AccessMode::Write,
            };
            (FieldId(f), mode)
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join is a semilattice on arbitrary vectors (Property 1).
    #[test]
    fn av_join_semilattice(a in av_strategy(), b in av_strategy(), c in av_strategy()) {
        prop_assert_eq!(&a.join(&a), &a);
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        // Least upper bound.
        prop_assert!(a.le(&a.join(&b)));
        prop_assert!(b.le(&a.join(&b)));
    }

    /// Commutativity (Definition 5) is symmetric, and joining can only
    /// destroy commutativity, never create it (monotone conservatism).
    #[test]
    fn av_commutes_symmetric_and_antitone(a in av_strategy(), b in av_strategy(), c in av_strategy()) {
        prop_assert_eq!(a.commutes(&b), b.commutes(&a));
        if !a.commutes(&b) {
            prop_assert!(!a.join(&c).commutes(&b), "join must preserve conflicts");
        }
    }

    /// For every generated schema: the compiler succeeds and, per class
    /// and method, TAV ⊒ DAV pointwise, TAVs satisfy the Definition 10
    /// fixpoint over the late-binding graph, SCC members share TAVs, and
    /// the generated matrix agrees with raw vector commutativity.
    #[test]
    fn compiled_schema_invariants(cfg in cfg_strategy()) {
        let env = generate_env(&cfg);
        let schema = &env.schema;
        let compiled = &env.compiled;

        for ci in schema.classes() {
            let table = compiled.class(ci.id);
            let graph = compiled.graph(ci.id);
            let tavs = &compiled.vertex_tavs[ci.id.index()];

            // Matrix is symmetric and matches the raw vectors.
            for i in 0..table.mode_count() {
                prop_assert!(table.dav(i).le(table.tav(i)), "TAV ⊒ DAV");
                for j in 0..table.mode_count() {
                    prop_assert_eq!(table.commute(i, j), table.commute(j, i));
                    prop_assert_eq!(
                        table.commute(i, j),
                        table.tav(i).commutes(table.tav(j)),
                        "matrix must equal vector commutativity"
                    );
                }
            }

            // Definition 10 fixpoint: TAV(v) = DAV(v) ⊔ ⨆ TAV(succ).
            for (v, outs) in graph.edges.iter().enumerate() {
                let mut expect = compiled.extraction.dav(graph.verts[v]).clone();
                for &w in outs {
                    expect.join_assign(&tavs[w as usize]);
                }
                prop_assert_eq!(&tavs[v], &expect, "fixpoint at vertex {}", v);
            }
        }
    }

    /// Reader-only methods never conflict with each other, in any class
    /// of any generated schema.
    #[test]
    fn readers_always_commute(cfg in cfg_strategy()) {
        let env = generate_env(&cfg);
        for ci in env.schema.classes() {
            let table = env.compiled.class(ci.id);
            let readers: Vec<usize> = (0..table.mode_count())
                .filter(|&i| table.tav(i).is_read_only())
                .collect();
            for &i in &readers {
                for &j in &readers {
                    prop_assert!(table.commute(i, j), "two readers must commute");
                }
            }
        }
    }

    /// The RW collapse is coarser than commutativity: whenever the RW
    /// classification says two methods are compatible (reader-reader),
    /// the commutativity matrix agrees — TAVs only ever ADD parallelism.
    #[test]
    fn tav_dominates_rw(cfg in cfg_strategy()) {
        let env = generate_env(&cfg);
        for ci in env.schema.classes() {
            let table = env.compiled.class(ci.id);
            for i in 0..table.mode_count() {
                for j in 0..table.mode_count() {
                    let rw_compatible = table.tav(i).is_read_only() && table.tav(j).is_read_only();
                    if rw_compatible {
                        prop_assert!(table.commute(i, j));
                    }
                }
            }
        }
    }

    /// Undo round-trip: any prefix of writes on a random instance is
    /// fully reverted by the log.
    #[test]
    fn undo_roundtrip(cfg in cfg_strategy(), writes in proptest::collection::vec((0u32..64, -50i64..50), 1..20)) {
        use finecc::store::UndoLog;
        use finecc::model::Value;

        let env = generate_env(&cfg);
        // Pick the class with the most fields.
        let Some(ci) = env.schema.classes().max_by_key(|c| c.all_fields.len()) else {
            return Ok(());
        };
        if ci.all_fields.is_empty() {
            return Ok(());
        }
        let class = ci.id;
        let fields = ci.all_fields.clone();
        let oid = env.db.create(class);
        let before = env.db.snapshot();

        let mut log = UndoLog::new();
        for (fsel, v) in writes {
            let f = fields[fsel as usize % fields.len()];
            let old = env.db.write(oid, f, Value::Int(v)).unwrap();
            log.record(oid, f, old);
        }
        log.rollback(&env.db);
        prop_assert_eq!(env.db.snapshot(), before);
    }

    /// Snapshot-isolation safety: in ANY interleaved history the mvcc
    /// heap admits, committed transactions that ran concurrently have
    /// disjoint write sets (no write-write conflicts survive
    /// first-updater-wins validation), the final store state equals the
    /// commit-timestamp-order replay of the committed write sets, aborted
    /// transactions leave no trace, and GC drains every superseded
    /// version once no snapshot is live.
    #[test]
    fn mvcc_committed_histories_are_ww_conflict_free(
        steps in proptest::collection::vec(mvcc_step_strategy(), 1..60)
    ) {
        struct Open {
            id: TxnId,
            begin_ts: u64,
            writes: HashMap<Oid, i64>,
        }
        let (heap, oids, field) = mvcc_fixture(6);
        let mut next_id = 1u64;
        let mut open: Vec<Option<Open>> = (0..4).map(|_| None).collect();
        // Committed transactions: (begin_ts, commit_ts, write set).
        let mut committed: Vec<(u64, u64, HashMap<Oid, i64>)> = Vec::new();

        for step in steps {
            match step {
                MvccStep::Write { slot, oid, val } => {
                    if open[slot].is_none() {
                        let id = TxnId(next_id);
                        next_id += 1;
                        let begin_ts = heap.begin(id);
                        open[slot] = Some(Open { id, begin_ts, writes: HashMap::new() });
                    }
                    let txn = open[slot].as_mut().expect("opened above");
                    match heap.write(txn.id, oids[oid], field, Value::Int(val)) {
                        Ok(_) => {
                            txn.writes.insert(oids[oid], val);
                        }
                        Err(MvccWriteError::Conflict(_)) => {
                            // First-updater-wins refusal: the transaction
                            // aborts, like a deadlock victim would.
                            let txn = open[slot].take().expect("still open");
                            heap.abort(txn.id);
                        }
                        Err(MvccWriteError::Store(e)) => {
                            prop_assert!(false, "unexpected store error: {e}");
                        }
                    }
                }
                MvccStep::Commit(slot) => {
                    if let Some(txn) = open[slot].take() {
                        let commit_ts = heap
                            .commit(txn.id)
                            .expect("snapshot-level commit is infallible");
                        committed.push((txn.begin_ts, commit_ts, txn.writes));
                    }
                }
                MvccStep::Abort(slot) => {
                    if let Some(txn) = open[slot].take() {
                        heap.abort(txn.id);
                    }
                }
            }
        }
        // Close stragglers: commit is infallible for admitted writes.
        for txn in open.into_iter().flatten() {
            let commit_ts = heap
                .commit(txn.id)
                .expect("snapshot-level commit is infallible");
            committed.push((txn.begin_ts, commit_ts, txn.writes));
        }

        // (1) Concurrent committed transactions never share an object.
        for i in 0..committed.len() {
            for j in i + 1..committed.len() {
                let (a_begin, a_commit, a_writes) = &committed[i];
                let (b_begin, b_commit, b_writes) = &committed[j];
                let concurrent = a_begin < b_commit && b_begin < a_commit;
                if concurrent {
                    prop_assert!(
                        a_writes.keys().all(|o| !b_writes.contains_key(o)),
                        "concurrent commits share a written object: \
                         [{a_begin},{a_commit}) vs [{b_begin},{b_commit})"
                    );
                }
            }
        }

        // (2) Final state == last-committer-wins replay in commit order.
        committed.sort_by_key(|(_, commit_ts, _)| *commit_ts);
        let mut expect: HashMap<Oid, i64> = HashMap::new();
        for (_, _, writes) in &committed {
            for (oid, val) in writes {
                expect.insert(*oid, *val);
            }
        }
        for &oid in &oids {
            let got = heap.base().read(oid, field).expect("object exists");
            let want = Value::Int(expect.get(&oid).copied().unwrap_or(0));
            prop_assert_eq!(got, want, "replay mismatch at {}", oid);
        }

        // (3) No transaction is live: GC reclaims the whole history.
        heap.gc();
        prop_assert_eq!(heap.live_versions(), 0);
    }

    /// Snapshot stability: a snapshot taken mid-history returns the same
    /// values no matter how many transactions commit after it.
    #[test]
    fn mvcc_snapshots_are_stable(
        prefix in proptest::collection::vec((0usize..4, -50i64..50), 0..12),
        suffix in proptest::collection::vec((0usize..4, -50i64..50), 0..12),
    ) {
        let (heap, oids, field) = mvcc_fixture(4);
        let mut next_id = 1u64;
        let mut run = |writes: &[(usize, i64)], heap: &Arc<MvccHeap>| {
            for &(oid, val) in writes {
                let id = TxnId(next_id);
                next_id += 1;
                heap.begin(id);
                heap.write(id, oids[oid], field, Value::Int(val))
                    .expect("serial writers never conflict");
                heap.commit(id).expect("serial writers never conflict");
            }
        };
        run(&prefix, &heap);
        let snap = heap.snapshot();
        let observed: Vec<Value> = oids
            .iter()
            .map(|&o| snap.read(o, field).expect("object exists"))
            .collect();
        run(&suffix, &heap);
        // GC while the snapshot is live must not steal its versions.
        heap.gc();
        for (i, &oid) in oids.iter().enumerate() {
            prop_assert_eq!(
                snap.read(oid, field).expect("object exists"),
                observed[i].clone(),
                "snapshot view drifted for {}",
                oid
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serializability of every history `mvcc-ssi` admits: over the
    /// committed transactions, the multiversion serialization graph —
    /// ww edges in commit-timestamp (version) order, wr edges from a
    /// version's writer to its readers, rw edges from a version's
    /// readers to the next version's writer — must be acyclic, and (the
    /// snapshot-level oracle, reused) the commit-order replay of the
    /// committed write sets must reproduce the exact final state.
    /// Dangerous-structure aborts are allowed (flag-based SSI
    /// over-aborts); admitting a non-serializable history is not.
    #[test]
    fn mvcc_ssi_committed_histories_are_serializable(
        steps in proptest::collection::vec(ssi_step_strategy(), 1..70)
    ) {
        struct Open {
            id: TxnId,
            begin_ts: u64,
            reads: HashSet<Oid>,
            writes: HashMap<Oid, i64>,
        }
        struct Done {
            begin_ts: u64,
            commit_ts: u64,
            reads: HashSet<Oid>,
            writes: HashMap<Oid, i64>,
        }
        let (heap, oids, field) = mvcc_fixture_at(IsolationLevel::Serializable, 5);
        let mut next_id = 1u64;
        let mut open: Vec<Option<Open>> = (0..4).map(|_| None).collect();
        let mut committed: Vec<Done> = Vec::new();
        let mut ensure_open = |slot: usize,
                               open: &mut Vec<Option<Open>>,
                               heap: &Arc<MvccHeap>| {
            if open[slot].is_none() {
                let id = TxnId(next_id);
                next_id += 1;
                let begin_ts = heap.begin(id);
                open[slot] = Some(Open {
                    id,
                    begin_ts,
                    reads: HashSet::new(),
                    writes: HashMap::new(),
                });
            }
        };

        for step in steps {
            match step {
                SsiStep::Read { slot, oid } => {
                    ensure_open(slot, &mut open, &heap);
                    let txn = open[slot].as_mut().expect("opened above");
                    txn.reads.insert(oids[oid]);
                    heap.read(txn.id, oids[oid], field).expect("object exists");
                }
                SsiStep::Write { slot, oid, val } => {
                    ensure_open(slot, &mut open, &heap);
                    let txn = open[slot].as_mut().expect("opened above");
                    match heap.write(txn.id, oids[oid], field, Value::Int(val)) {
                        Ok(_) => {
                            txn.writes.insert(oids[oid], val);
                        }
                        Err(MvccWriteError::Conflict(_)) => {
                            let txn = open[slot].take().expect("still open");
                            heap.abort(txn.id);
                        }
                        Err(MvccWriteError::Store(e)) => {
                            prop_assert!(false, "unexpected store error: {e}");
                        }
                    }
                }
                SsiStep::Commit(slot) => {
                    if let Some(txn) = open[slot].take() {
                        // A refused commit is already rolled back.
                        if let Ok(commit_ts) = heap.commit(txn.id) {
                            committed.push(Done {
                                begin_ts: txn.begin_ts,
                                commit_ts,
                                reads: txn.reads,
                                writes: txn.writes,
                            });
                        }
                    }
                }
                SsiStep::Abort(slot) => {
                    if let Some(txn) = open[slot].take() {
                        heap.abort(txn.id);
                    }
                }
            }
        }
        for txn in open.into_iter().flatten() {
            if let Ok(commit_ts) = heap.commit(txn.id) {
                committed.push(Done {
                    begin_ts: txn.begin_ts,
                    commit_ts,
                    reads: txn.reads,
                    writes: txn.writes,
                });
            }
        }
        // Read-only transactions serialize at their snapshot timestamp,
        // which writer commit timestamps can collide with; they change
        // no state, so any order among equals satisfies oracle (1), and
        // oracle (2) never consults this order.
        committed.sort_by_key(|t| (t.commit_ts, !t.writes.is_empty()));

        // (1) Final state equals the commit-order replay of the write
        // sets — the same oracle the snapshot-level history test uses.
        let mut expect: HashMap<Oid, i64> = HashMap::new();
        for t in &committed {
            for (oid, val) in &t.writes {
                expect.insert(*oid, *val);
            }
        }
        for &oid in &oids {
            let got = heap.base().read(oid, field).expect("object exists");
            let want = Value::Int(expect.get(&oid).copied().unwrap_or(0));
            prop_assert_eq!(got, want, "replay mismatch at {}", oid);
        }

        // (2) The multiversion serialization graph is acyclic. Node 0 is
        // the virtual initial transaction; nodes 1.. are the committed
        // transactions in commit order.
        let n = committed.len() + 1;
        // Version list per object: (commit_ts, writer node), ascending.
        let mut versions: HashMap<Oid, Vec<(u64, usize)>> = HashMap::new();
        for &oid in &oids {
            versions.insert(oid, vec![(0, 0)]);
        }
        for (i, t) in committed.iter().enumerate() {
            for oid in t.writes.keys() {
                versions.get_mut(oid).expect("fixture object").push((t.commit_ts, i + 1));
            }
        }
        let mut edges: HashSet<(usize, usize)> = HashSet::new();
        for vs in versions.values() {
            for w in vs.windows(2) {
                edges.insert((w[0].1, w[1].1)); // ww, version order
            }
        }
        for (i, t) in committed.iter().enumerate() {
            let node = i + 1;
            for oid in &t.reads {
                let vs = &versions[oid];
                // The version this transaction read: newest at or below
                // its snapshot (its own write, if any, comes later).
                let pos = vs.iter().rposition(|&(ts, _)| ts <= t.begin_ts)
                    .expect("initial version is at ts 0");
                let (_, writer) = vs[pos];
                if writer != node {
                    edges.insert((writer, node)); // wr
                }
                if let Some(&(_, next_writer)) = vs.get(pos + 1) {
                    if next_writer != node {
                        edges.insert((node, next_writer)); // rw
                    }
                }
            }
        }
        // DFS cycle detection.
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            succ[a].push(b);
        }
        // 0 = unvisited, 1 = on stack, 2 = done.
        let mut state = vec![0u8; n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if state[start] != 0 {
                continue;
            }
            state[start] = 1;
            stack.push((start, 0));
            while let Some(&mut (v, ref mut k)) = stack.last_mut() {
                if *k < succ[v].len() {
                    let w = succ[v][*k];
                    *k += 1;
                    match state[w] {
                        0 => {
                            state[w] = 1;
                            stack.push((w, 0));
                        }
                        1 => prop_assert!(
                            false,
                            "serialization graph has a cycle through nodes {v} and {w}"
                        ),
                        _ => {}
                    }
                } else {
                    state[v] = 2;
                    stack.pop();
                }
            }
        }
    }
}

/// The false-positive counter the granularity argument promises: on a
/// read-heavy workload where every reader's read set is overwritten
/// mid-flight but nobody reads what the readers write, naive read-set
/// revalidation ("abort if anything you read changed before you
/// committed") would abort EVERY reader, while SSI — which needs a
/// second, outgoing rw edge to complete a dangerous structure — aborts
/// none: strictly fewer, here zero.
#[test]
fn ssi_aborts_strictly_fewer_than_naive_read_set_revalidation() {
    const ROUNDS: u64 = 100;
    let (heap, oids, field) = mvcc_fixture_at(IsolationLevel::Serializable, 1 + ROUNDS as usize);
    let hot = oids[0];
    let mut naive_aborts = 0u64;
    let mut next_id = 1u64;
    for i in 0..ROUNDS {
        let reader = TxnId(next_id);
        let writer = TxnId(next_id + 1);
        next_id += 2;
        let r_begin = heap.begin(reader);
        heap.read(reader, hot, field).expect("object exists");
        heap.begin(writer);
        heap.write(writer, hot, field, Value::Int(i as i64))
            .expect("reader holds no write lock — nothing blocks the writer");
        let w_commit = heap
            .commit(writer)
            .expect("an incoming edge alone is no dangerous structure");
        // The reader now writes something nobody reads and commits.
        heap.write(reader, oids[1 + i as usize], field, Value::Int(i as i64))
            .expect("private object: no conflict");
        let r_commit = heap
            .commit(reader)
            .expect("an outgoing edge alone is no dangerous structure");
        // Naive read-set revalidation aborts this reader: its read of
        // `hot` was overwritten by a commit inside its lifetime.
        assert!(r_begin < w_commit && w_commit < r_commit);
        naive_aborts += 1;
    }
    let stats = heap.stats.snapshot();
    assert_eq!(
        naive_aborts, ROUNDS,
        "naive revalidation aborts every reader"
    );
    assert_eq!(stats.ssi_aborts, 0, "no dangerous structure ever completes");
    assert!(
        stats.ssi_aborts < naive_aborts,
        "SSI must abort strictly fewer transactions than read-set revalidation"
    );
    assert!(stats.ssi_edges >= ROUNDS, "the rw edges were still tracked");
    assert_eq!(stats.commits, 2 * ROUNDS);
}
