//! Property-based tests over randomly generated schemas: the algebraic
//! invariants of the paper's construction must hold for *every* program,
//! not just Figure 1.

use finecc::core::{AccessMode, AccessVector};
use finecc::model::FieldId;
use finecc::sim::workload::{generate_env, SchemaGenConfig};
use proptest::prelude::*;

fn cfg_strategy() -> impl Strategy<Value = SchemaGenConfig> {
    (
        1usize..14,
        any::<u64>(),
        0usize..5,
        1usize..6,
        0.0f64..1.0,
        0.0f64..0.8,
    )
        .prop_map(|(classes, seed, min_f, methods_hi, write_prob, self_call_prob)| {
            SchemaGenConfig {
                classes,
                seed,
                fields_per_class: (min_f, min_f + 3),
                methods_per_class: (1, methods_hi),
                write_prob,
                self_call_prob,
                ..SchemaGenConfig::default()
            }
        })
}

fn av_strategy() -> impl Strategy<Value = AccessVector> {
    proptest::collection::vec((0u32..24, 0u8..3), 0..12).prop_map(|pairs| {
        AccessVector::from_pairs(pairs.into_iter().map(|(f, m)| {
            let mode = match m {
                0 => AccessMode::Null,
                1 => AccessMode::Read,
                _ => AccessMode::Write,
            };
            (FieldId(f), mode)
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Join is a semilattice on arbitrary vectors (Property 1).
    #[test]
    fn av_join_semilattice(a in av_strategy(), b in av_strategy(), c in av_strategy()) {
        prop_assert_eq!(&a.join(&a), &a);
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
        // Least upper bound.
        prop_assert!(a.le(&a.join(&b)));
        prop_assert!(b.le(&a.join(&b)));
    }

    /// Commutativity (Definition 5) is symmetric, and joining can only
    /// destroy commutativity, never create it (monotone conservatism).
    #[test]
    fn av_commutes_symmetric_and_antitone(a in av_strategy(), b in av_strategy(), c in av_strategy()) {
        prop_assert_eq!(a.commutes(&b), b.commutes(&a));
        if !a.commutes(&b) {
            prop_assert!(!a.join(&c).commutes(&b), "join must preserve conflicts");
        }
    }

    /// For every generated schema: the compiler succeeds and, per class
    /// and method, TAV ⊒ DAV pointwise, TAVs satisfy the Definition 10
    /// fixpoint over the late-binding graph, SCC members share TAVs, and
    /// the generated matrix agrees with raw vector commutativity.
    #[test]
    fn compiled_schema_invariants(cfg in cfg_strategy()) {
        let env = generate_env(&cfg);
        let schema = &env.schema;
        let compiled = &env.compiled;

        for ci in schema.classes() {
            let table = compiled.class(ci.id);
            let graph = compiled.graph(ci.id);
            let tavs = &compiled.vertex_tavs[ci.id.index()];

            // Matrix is symmetric and matches the raw vectors.
            for i in 0..table.mode_count() {
                prop_assert!(table.dav(i).le(table.tav(i)), "TAV ⊒ DAV");
                for j in 0..table.mode_count() {
                    prop_assert_eq!(table.commute(i, j), table.commute(j, i));
                    prop_assert_eq!(
                        table.commute(i, j),
                        table.tav(i).commutes(table.tav(j)),
                        "matrix must equal vector commutativity"
                    );
                }
            }

            // Definition 10 fixpoint: TAV(v) = DAV(v) ⊔ ⨆ TAV(succ).
            for (v, outs) in graph.edges.iter().enumerate() {
                let mut expect = compiled.extraction.dav(graph.verts[v]).clone();
                for &w in outs {
                    expect.join_assign(&tavs[w as usize]);
                }
                prop_assert_eq!(&tavs[v], &expect, "fixpoint at vertex {}", v);
            }
        }
    }

    /// Reader-only methods never conflict with each other, in any class
    /// of any generated schema.
    #[test]
    fn readers_always_commute(cfg in cfg_strategy()) {
        let env = generate_env(&cfg);
        for ci in env.schema.classes() {
            let table = env.compiled.class(ci.id);
            let readers: Vec<usize> = (0..table.mode_count())
                .filter(|&i| table.tav(i).is_read_only())
                .collect();
            for &i in &readers {
                for &j in &readers {
                    prop_assert!(table.commute(i, j), "two readers must commute");
                }
            }
        }
    }

    /// The RW collapse is coarser than commutativity: whenever the RW
    /// classification says two methods are compatible (reader-reader),
    /// the commutativity matrix agrees — TAVs only ever ADD parallelism.
    #[test]
    fn tav_dominates_rw(cfg in cfg_strategy()) {
        let env = generate_env(&cfg);
        for ci in env.schema.classes() {
            let table = env.compiled.class(ci.id);
            for i in 0..table.mode_count() {
                for j in 0..table.mode_count() {
                    let rw_compatible = table.tav(i).is_read_only() && table.tav(j).is_read_only();
                    if rw_compatible {
                        prop_assert!(table.commute(i, j));
                    }
                }
            }
        }
    }

    /// Undo round-trip: any prefix of writes on a random instance is
    /// fully reverted by the log.
    #[test]
    fn undo_roundtrip(cfg in cfg_strategy(), writes in proptest::collection::vec((0u32..64, -50i64..50), 1..20)) {
        use finecc::store::UndoLog;
        use finecc::model::Value;

        let env = generate_env(&cfg);
        // Pick the class with the most fields.
        let Some(ci) = env.schema.classes().max_by_key(|c| c.all_fields.len()) else {
            return Ok(());
        };
        if ci.all_fields.is_empty() {
            return Ok(());
        }
        let class = ci.id;
        let fields = ci.all_fields.clone();
        let oid = env.db.create(class);
        let before = env.db.snapshot();

        let mut log = UndoLog::new();
        for (fsel, v) in writes {
            let f = fields[fsel as usize % fields.len()];
            let old = env.db.write(oid, f, Value::Int(v)).unwrap();
            log.record(oid, f, old);
        }
        log.rollback(&env.db);
        prop_assert_eq!(env.db.snapshot(), before);
    }
}
