//! Cross-scheme concurrency stress tests: invariants must hold under
//! real thread interleavings, aborts must leave no trace, and the
//! commuting-writer parallelism the paper promises must be observable.

use finecc::model::{Oid, Value};
use finecc::runtime::{run_txn, CcScheme, Env, SchemeKind};
use std::sync::Arc;

const COUNTERS: &str = r#"
class counter {
  fields { n: integer; bumps: integer; }
  method inc(by) is
    n := n + by;
    send note to self
  end
  method note is
    bumps := bumps + 1
  end
  method value is
    return n
  end
}

class pair inherits counter {
  fields { m: integer; }
  method inc_m(by) is
    m := m + by
  end
}
"#;

fn setup(kind: SchemeKind, instances: usize) -> (Arc<dyn CcScheme>, Vec<Oid>) {
    let env = Env::from_source(COUNTERS).unwrap();
    let pair = env.schema.class_by_name("pair").unwrap();
    let oids: Vec<Oid> = (0..instances).map(|_| env.db.create(pair)).collect();
    (Arc::from(kind.build(env)), oids)
}

#[test]
fn increments_are_never_lost_under_any_scheme() {
    for kind in SchemeKind::ALL {
        let (scheme, oids) = setup(kind, 4);
        let per_thread = 100;
        std::thread::scope(|s| {
            for t in 0..4 {
                let scheme = Arc::clone(&scheme);
                let oids = oids.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let oid = oids[(t + i) % oids.len()];
                        let out = run_txn(scheme.as_ref(), 100, |txn| {
                            scheme.send(txn, oid, "inc", &[Value::Int(1)])
                        });
                        assert!(out.is_committed(), "{kind}: inc must commit");
                    }
                });
            }
        });
        let env = scheme.env();
        let total: i64 = oids
            .iter()
            .map(|&o| env.read_named(o, "counter", "n").as_int().unwrap())
            .sum();
        assert_eq!(total, 400, "{kind}: lost update detected");
        let bumps: i64 = oids
            .iter()
            .map(|&o| env.read_named(o, "counter", "bumps").as_int().unwrap())
            .sum();
        assert_eq!(bumps, 400, "{kind}: nested self-call writes lost");
    }
}

#[test]
fn commuting_writers_interleave_under_tav_on_one_instance() {
    // `inc` (counter fields) and `inc_m` (pair-only field) commute: two
    // transactions hold locks on the SAME instance simultaneously.
    let (scheme, oids) = setup(SchemeKind::Tav, 1);
    let oid = oids[0];
    let mut t1 = scheme.begin();
    let mut t2 = scheme.begin();
    scheme.send(&mut t1, oid, "inc", &[Value::Int(5)]).unwrap();
    scheme
        .send(&mut t2, oid, "inc_m", &[Value::Int(7)])
        .unwrap();
    scheme.commit(t1);
    scheme.commit(t2);
    let env = scheme.env();
    assert_eq!(env.read_named(oid, "counter", "n"), Value::Int(5));
    assert_eq!(env.read_named(oid, "pair", "m"), Value::Int(7));
    assert_eq!(scheme.stats().blocks, 0, "no blocking happened");
}

#[test]
fn abort_leaves_no_trace_under_all_schemes() {
    for kind in SchemeKind::ALL {
        let (scheme, oids) = setup(kind, 1);
        let oid = oids[0];
        // Commit one increment, then abort another.
        let mut t = scheme.begin();
        scheme.send(&mut t, oid, "inc", &[Value::Int(3)]).unwrap();
        scheme.commit(t);
        let mut t = scheme.begin();
        scheme.send(&mut t, oid, "inc", &[Value::Int(100)]).unwrap();
        scheme.abort(t);
        let env = scheme.env();
        assert_eq!(
            env.read_named(oid, "counter", "n"),
            Value::Int(3),
            "{kind}: abort must undo"
        );
        assert_eq!(
            env.read_named(oid, "counter", "bumps"),
            Value::Int(1),
            "{kind}: nested write must be undone too"
        );
    }
}

#[test]
fn deadlock_victims_retry_to_completion() {
    // Symmetric hot-spot updates across two instances force deadlocks in
    // per-message RW locking; retries must still complete every txn.
    let (scheme, oids) = setup(SchemeKind::Rw, 2);
    let per_thread = 50;
    std::thread::scope(|s| {
        for t in 0..4 {
            let scheme = Arc::clone(&scheme);
            let oids = oids.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    // Opposite orders on alternating threads.
                    let (a, b) = if t % 2 == 0 {
                        (oids[0], oids[1])
                    } else {
                        (oids[1], oids[0])
                    };
                    let out = run_txn(scheme.as_ref(), 200, |txn| {
                        scheme.send(txn, a, "inc", &[Value::Int(1)])?;
                        scheme.send(txn, b, "inc", &[Value::Int(1)])
                    });
                    assert!(out.is_committed(), "thread {t} iter {i}");
                }
            });
        }
    });
    let env = scheme.env();
    let total: i64 = oids
        .iter()
        .map(|&o| env.read_named(o, "counter", "n").as_int().unwrap())
        .sum();
    assert_eq!(total, 2 * 4 * per_thread as i64);
}

#[test]
fn extent_ops_and_instance_ops_mix_safely() {
    let (scheme, oids) = setup(SchemeKind::Tav, 6);
    let env = scheme.env().clone();
    let counter = env.schema.class_by_name("counter").unwrap();
    std::thread::scope(|s| {
        for t in 0..3 {
            let scheme = Arc::clone(&scheme);
            let oids = oids.clone();
            s.spawn(move || {
                for i in 0..30 {
                    if (t + i) % 7 == 0 {
                        let out = run_txn(scheme.as_ref(), 100, |txn| {
                            scheme
                                .send_all(txn, counter, "inc", &[Value::Int(1)])
                                .map(|_| Value::Nil)
                        });
                        assert!(out.is_committed());
                    } else {
                        let oid = oids[i % oids.len()];
                        let out = run_txn(scheme.as_ref(), 100, |txn| {
                            scheme.send(txn, oid, "inc", &[Value::Int(1)])
                        });
                        assert!(out.is_committed());
                    }
                }
            });
        }
    });
    // n per instance == bumps per instance (inc always notes).
    for &o in &oids {
        assert_eq!(
            env.read_named(o, "counter", "n"),
            env.read_named(o, "counter", "bumps"),
            "inc/note atomicity violated"
        );
    }
}
