//! Cross-scheme concurrency stress tests: invariants must hold under
//! real thread interleavings, aborts must leave no trace, and the
//! commuting-writer parallelism the paper promises must be observable.

use finecc::model::{Oid, Value};
use finecc::runtime::{run_txn, CcScheme, Env, MvccScheme, SchemeKind, TxnOutcome};
use std::sync::Arc;

const COUNTERS: &str = r#"
class counter {
  fields { n: integer; bumps: integer; }
  method inc(by) is
    n := n + by;
    send note to self
  end
  method note is
    bumps := bumps + 1
  end
  method value is
    return n
  end
}

class pair inherits counter {
  fields { m: integer; }
  method inc_m(by) is
    m := m + by
  end
}
"#;

fn setup(kind: SchemeKind, instances: usize) -> (Arc<dyn CcScheme>, Vec<Oid>) {
    let env = Env::from_source(COUNTERS).unwrap();
    let pair = env.schema.class_by_name("pair").unwrap();
    let oids: Vec<Oid> = (0..instances).map(|_| env.db.create(pair)).collect();
    (Arc::from(kind.build(env)), oids)
}

#[test]
fn increments_are_never_lost_under_any_scheme() {
    for kind in SchemeKind::ALL {
        let (scheme, oids) = setup(kind, 4);
        let per_thread = 100;
        std::thread::scope(|s| {
            for t in 0..4 {
                let scheme = Arc::clone(&scheme);
                let oids = oids.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let oid = oids[(t + i) % oids.len()];
                        let out = run_txn(scheme.as_ref(), 100, |txn| {
                            scheme.send(txn, oid, "inc", &[Value::Int(1)])
                        });
                        assert!(out.is_committed(), "{kind}: inc must commit");
                    }
                });
            }
        });
        let env = scheme.env();
        let total: i64 = oids
            .iter()
            .map(|&o| env.read_named(o, "counter", "n").as_int().unwrap())
            .sum();
        assert_eq!(total, 400, "{kind}: lost update detected");
        let bumps: i64 = oids
            .iter()
            .map(|&o| env.read_named(o, "counter", "bumps").as_int().unwrap())
            .sum();
        assert_eq!(bumps, 400, "{kind}: nested self-call writes lost");
    }
}

#[test]
fn commuting_writers_interleave_under_tav_on_one_instance() {
    // `inc` (counter fields) and `inc_m` (pair-only field) commute: two
    // transactions hold locks on the SAME instance simultaneously.
    let (scheme, oids) = setup(SchemeKind::Tav, 1);
    let oid = oids[0];
    let mut t1 = scheme.begin();
    let mut t2 = scheme.begin();
    scheme.send(&mut t1, oid, "inc", &[Value::Int(5)]).unwrap();
    scheme
        .send(&mut t2, oid, "inc_m", &[Value::Int(7)])
        .unwrap();
    scheme.commit(t1).unwrap();
    scheme.commit(t2).unwrap();
    let env = scheme.env();
    assert_eq!(env.read_named(oid, "counter", "n"), Value::Int(5));
    assert_eq!(env.read_named(oid, "pair", "m"), Value::Int(7));
    assert_eq!(scheme.stats().blocks, 0, "no blocking happened");
}

#[test]
fn abort_leaves_no_trace_under_all_schemes() {
    for kind in SchemeKind::ALL {
        let (scheme, oids) = setup(kind, 1);
        let oid = oids[0];
        // Commit one increment, then abort another.
        let mut t = scheme.begin();
        scheme.send(&mut t, oid, "inc", &[Value::Int(3)]).unwrap();
        scheme.commit(t).unwrap();
        let mut t = scheme.begin();
        scheme.send(&mut t, oid, "inc", &[Value::Int(100)]).unwrap();
        scheme.abort(t);
        let env = scheme.env();
        assert_eq!(
            env.read_named(oid, "counter", "n"),
            Value::Int(3),
            "{kind}: abort must undo"
        );
        assert_eq!(
            env.read_named(oid, "counter", "bumps"),
            Value::Int(1),
            "{kind}: nested write must be undone too"
        );
    }
}

#[test]
fn deadlock_victims_retry_to_completion() {
    // Symmetric hot-spot updates across two instances force deadlocks in
    // per-message RW locking; retries must still complete every txn.
    let (scheme, oids) = setup(SchemeKind::Rw, 2);
    let per_thread = 50;
    std::thread::scope(|s| {
        for t in 0..4 {
            let scheme = Arc::clone(&scheme);
            let oids = oids.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    // Opposite orders on alternating threads.
                    let (a, b) = if t % 2 == 0 {
                        (oids[0], oids[1])
                    } else {
                        (oids[1], oids[0])
                    };
                    let out = run_txn(scheme.as_ref(), 200, |txn| {
                        scheme.send(txn, a, "inc", &[Value::Int(1)])?;
                        scheme.send(txn, b, "inc", &[Value::Int(1)])
                    });
                    assert!(out.is_committed(), "thread {t} iter {i}");
                }
            });
        }
    });
    let env = scheme.env();
    let total: i64 = oids
        .iter()
        .map(|&o| env.read_named(o, "counter", "n").as_int().unwrap())
        .sum();
    assert_eq!(total, 2 * 4 * per_thread as i64);
}

#[test]
fn mvcc_snapshot_readers_never_block_and_gc_reclaims() {
    // N writer threads hammer a hot field (forcing first-updater-wins
    // retries) while M reader threads run snapshot transactions and hold
    // standalone snapshots across writer commits. Readers must commit on
    // their FIRST attempt every time — there is nothing that can block
    // or restart them — and no logical lock may ever be requested. Once
    // the run ends and all snapshots drop, epoch GC must reclaim every
    // superseded version.
    const WRITERS: usize = 3;
    const READERS: usize = 2;
    const WRITES_PER_THREAD: usize = 80;
    const READS_PER_THREAD: usize = 200;

    let env = Env::from_source(COUNTERS).unwrap();
    let pair = env.schema.class_by_name("pair").unwrap();
    let oids: Vec<Oid> = (0..2).map(|_| env.db.create(pair)).collect();
    let scheme = Arc::new(MvccScheme::new(env));

    std::thread::scope(|s| {
        for t in 0..WRITERS {
            let scheme = Arc::clone(&scheme);
            let oids = oids.clone();
            s.spawn(move || {
                for i in 0..WRITES_PER_THREAD {
                    let oid = oids[(t + i) % oids.len()];
                    let out = run_txn(scheme.as_ref(), 10_000, |txn| {
                        scheme.send(txn, oid, "inc", &[Value::Int(1)])
                    });
                    assert!(out.is_committed(), "writer {t} iteration {i}");
                }
            });
        }
        for r in 0..READERS {
            let scheme = Arc::clone(&scheme);
            let oids = oids.clone();
            s.spawn(move || {
                // A long-lived standalone snapshot: its view must not
                // drift while writers commit around it, and it pins its
                // versions against GC.
                let pinned = scheme.heap().snapshot();
                let schema = scheme.env().schema.clone();
                let counter = schema.class_by_name("counter").unwrap();
                let n = schema.resolve_field(counter, "n").unwrap();
                let pinned_view: Vec<Value> =
                    oids.iter().map(|&o| pinned.read(o, n).unwrap()).collect();
                for i in 0..READS_PER_THREAD {
                    let oid = oids[(r + i) % oids.len()];
                    let out = run_txn(scheme.as_ref(), 0, |txn| {
                        scheme.send(txn, oid, "value", &[])
                    });
                    // max_retries = 0: a single restart would fail the
                    // transaction — readers never need one.
                    match out {
                        TxnOutcome::Committed { retries, .. } => {
                            assert_eq!(retries, 0, "reader {r} was restarted")
                        }
                        other => panic!("reader {r} blocked or failed: {other:?}"),
                    }
                    if i % 50 == 0 {
                        for (k, &o) in oids.iter().enumerate() {
                            assert_eq!(
                                pinned.read(o, n).unwrap(),
                                pinned_view[k],
                                "pinned snapshot drifted"
                            );
                        }
                    }
                }
            });
        }
    });

    // No logical lock was requested by anyone, reader or writer.
    assert_eq!(
        scheme.stats(),
        finecc::lock::StatsSnapshot::default(),
        "mvcc must never touch the lock manager"
    );
    let m = scheme.mvcc_stats().unwrap();
    assert_eq!(
        m.commits as usize,
        WRITERS * WRITES_PER_THREAD + READERS * READS_PER_THREAD
    );
    // Increments were serialized by first-updater-wins: none lost.
    let total: i64 = oids
        .iter()
        .map(|&o| scheme.env().read_named(o, "counter", "n").as_int().unwrap())
        .sum();
    assert_eq!(total, (WRITERS * WRITES_PER_THREAD) as i64);

    // Every snapshot is gone: one GC pass empties the version chains.
    scheme.heap().gc();
    assert_eq!(
        scheme.heap().live_versions(),
        0,
        "GC must reclaim everything"
    );
    let m = scheme.mvcc_stats().unwrap();
    assert!(m.versions_reclaimed > 0);
    assert_eq!(m.versions_created, m.versions_reclaimed);
}

#[test]
fn extent_ops_and_instance_ops_mix_safely() {
    let (scheme, oids) = setup(SchemeKind::Tav, 6);
    let env = scheme.env().clone();
    let counter = env.schema.class_by_name("counter").unwrap();
    std::thread::scope(|s| {
        for t in 0..3 {
            let scheme = Arc::clone(&scheme);
            let oids = oids.clone();
            s.spawn(move || {
                for i in 0..30 {
                    if (t + i) % 7 == 0 {
                        let out = run_txn(scheme.as_ref(), 100, |txn| {
                            scheme
                                .send_all(txn, counter, "inc", &[Value::Int(1)])
                                .map(|_| Value::Nil)
                        });
                        assert!(out.is_committed());
                    } else {
                        let oid = oids[i % oids.len()];
                        let out = run_txn(scheme.as_ref(), 100, |txn| {
                            scheme.send(txn, oid, "inc", &[Value::Int(1)])
                        });
                        assert!(out.is_committed());
                    }
                }
            });
        }
    });
    // n per instance == bumps per instance (inc always notes).
    for &o in &oids {
        assert_eq!(
            env.read_named(o, "counter", "n"),
            env.read_named(o, "counter", "bumps"),
            "inc/note atomicity violated"
        );
    }
}
