//! Multi-threaded commit- and reader-storm stress tests for the
//! latch-free MVCC paths: N writer threads over overlapping OIDs, with
//! concurrent observers asserting the publication invariants the
//! ordered watermark guarantees —
//!
//! * **watermark monotonicity**: `current_ts` never moves backwards;
//! * **no lost or torn writes**: every transaction writes the same
//!   round number to its field on *two* shared objects, so any snapshot
//!   must see the two values equal (commit atomicity) and the final
//!   base state must hold every thread's last round (durability of the
//!   full prefix);
//! * **contiguous commit prefix**: when the storm drains, the watermark
//!   equals drawn-timestamps = writer commits + validation skips — no
//!   hole is ever left unpublished;
//! * **reader-storm linearization** (`reader_storm_*`): N reader
//!   threads sample snapshots of the hot objects *during* the commit
//!   storm, at both isolation levels; afterwards every sample is
//!   replayed against a fresh `CoarseBaseline` heap fed the same
//!   committed history in timestamp order — the latch-free read path
//!   must be observationally identical to the seed's latched reader.
//!   The heap's read-side contention counters must also stay zero:
//!   every sampled read was a chain hit (no base-store `RwLock`) and no
//!   miss-revalidation retry ever fired;
//! * **cold-miss isolation** (`reader_storm_cold_miss_*`): the
//!   complementary storm keeps chains cold (writers alternate
//!   commit/abort, no warmup, no GC pin) so readers hammer the
//!   chain-miss base fallback while records appear and disappear — a
//!   rolled-back value leaking through the miss path would surface as
//!   a negative read.
//!
//! Thread count comes from `FINECC_TEST_THREADS` (default 8; CI runs
//! 16), the ISSUE's knob for running the storm wider in CI than on a
//! laptop.

use finecc::model::{FieldId, FieldType, Oid, SchemaBuilder, TxnId, Value};
use finecc::mvcc::{CommitPath, IsolationLevel, MvccHeap, MvccWriteError, Ts};
use finecc::store::Database;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn storm_threads() -> usize {
    std::env::var("FINECC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}

struct Storm {
    heap: Arc<MvccHeap>,
    /// `fields[t]` is thread `t`'s private field — threads overlap on
    /// objects but never on (object, field), so the snapshot-level storm
    /// is conflict-free by field granularity.
    fields: Vec<FieldId>,
    /// Shared objects; thread `t` writes objects `t % K` and `(t+1) % K`.
    oids: Vec<Oid>,
    next_txn: AtomicU64,
}

fn setup(threads: usize, isolation: IsolationLevel, commit_path: CommitPath) -> Storm {
    let mut b = SchemaBuilder::new();
    {
        let c = b.class("storm");
        for t in 0..threads {
            c.field(&format!("f{t}"), FieldType::Int);
        }
    }
    let schema = Arc::new(b.finish().unwrap());
    let class = schema.class_by_name("storm").unwrap();
    let fields: Vec<FieldId> = (0..threads)
        .map(|t| schema.resolve_field(class, &format!("f{t}")).unwrap())
        .collect();
    let db = Arc::new(Database::new(Arc::clone(&schema)));
    let objects = (threads / 2).max(2);
    let oids: Vec<Oid> = (0..objects).map(|_| db.create(class)).collect();
    Storm {
        heap: Arc::new(MvccHeap::with_commit_path(db, isolation, commit_path)),
        fields,
        oids,
        next_txn: AtomicU64::new(1),
    }
}

impl Storm {
    fn pair_of(&self, thread: usize) -> (Oid, Oid) {
        (
            self.oids[thread % self.oids.len()],
            self.oids[(thread + 1) % self.oids.len()],
        )
    }

    /// Runs one round of thread `t`: write `round` into the thread's
    /// field on both of its objects (optionally reading the ring
    /// neighbor's field first, to manufacture rw-antidependencies under
    /// SSI), retrying validation/conflict aborts on a fresh snapshot.
    /// Returns the commit timestamp and the number of commit-time
    /// validation aborts hit.
    fn run_round(&self, t: usize, round: i64, read_neighbor: bool) -> (Ts, u64) {
        let (a, b) = self.pair_of(t);
        let field = self.fields[t];
        // The ring neighbor's own (object, field) pair: reading what the
        // neighbor concurrently writes manufactures a real
        // rw-antidependency under SSI (and stays on warmed chains, so
        // the reader-storm's zero-miss accounting holds).
        let neighbor_t = (t + 1) % self.fields.len();
        let neighbor_obj = self.pair_of(neighbor_t).0;
        let neighbor_field = self.fields[neighbor_t];
        let mut validation_aborts = 0;
        for _attempt in 0..10_000 {
            let txn = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
            self.heap.begin(txn);
            if read_neighbor {
                self.heap.read(txn, neighbor_obj, neighbor_field).unwrap();
            }
            let writes = self
                .heap
                .write(txn, a, field, Value::Int(round))
                .and_then(|_| self.heap.write(txn, b, field, Value::Int(round)));
            match writes {
                Ok(_) => match self.heap.commit(txn) {
                    Ok(ts) => return (ts, validation_aborts),
                    Err(_) => validation_aborts += 1, // rolled back; retry
                },
                Err(MvccWriteError::Conflict(_)) => {
                    self.heap.abort(txn);
                }
                Err(e) => panic!("storm write failed: {e}"),
            }
        }
        panic!("thread {t} round {round}: retry budget exhausted");
    }

    /// Asserts the no-torn-write invariant on a fresh snapshot: for
    /// every thread, the two objects it writes atomically hold the same
    /// round value, and a second read returns the same answer
    /// (stability). Returns the snapshot timestamp.
    fn check_snapshot(&self) -> u64 {
        let snap = self.heap.snapshot();
        for (t, &field) in self.fields.iter().enumerate() {
            let (a, b) = self.pair_of(t);
            let va = snap.read(a, field).unwrap();
            let vb = snap.read(b, field).unwrap();
            assert_eq!(
                va,
                vb,
                "torn commit visible: thread {t} objects disagree at ts {}",
                snap.ts()
            );
            assert_eq!(snap.read(a, field).unwrap(), va, "snapshot unstable");
        }
        snap.ts()
    }
}

fn run_storm(isolation: IsolationLevel, commit_path: CommitPath, rounds: i64, read_neighbor: bool) {
    let threads = storm_threads();
    let storm = Arc::new(setup(threads, isolation, commit_path));
    let stop = Arc::new(AtomicBool::new(false));
    let total_validation_aborts = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Watermark observer: current_ts must be monotone.
        {
            let storm = Arc::clone(&storm);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let now = storm.heap.current_ts();
                    assert!(now >= last, "watermark moved backwards: {last} -> {now}");
                    last = now;
                    std::thread::yield_now();
                }
            });
        }
        // Snapshot observer: reads must never see a torn commit and
        // snapshot timestamps must be monotone too (they come straight
        // off the watermark).
        {
            let storm = Arc::clone(&storm);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let ts = storm.check_snapshot();
                    assert!(ts >= last, "snapshot ts moved backwards");
                    last = ts;
                }
            });
        }
        // The writer storm itself.
        let mut writers = Vec::new();
        for t in 0..threads {
            let storm = Arc::clone(&storm);
            let aborts = Arc::clone(&total_validation_aborts);
            writers.push(s.spawn(move || {
                let mut local = 0;
                for round in 0..rounds {
                    local += storm.run_round(t, round, read_neighbor).1;
                }
                aborts.fetch_add(local, Ordering::Relaxed);
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // No lost writes: the final base state holds every thread's last
    // round on both of its objects.
    for (t, &field) in storm.fields.iter().enumerate() {
        let (a, b) = storm.pair_of(t);
        assert_eq!(
            storm.heap.base().read(a, field),
            Ok(Value::Int(rounds - 1)),
            "thread {t} lost its last round on object a"
        );
        assert_eq!(
            storm.heap.base().read(b, field),
            Ok(Value::Int(rounds - 1)),
            "thread {t} lost its last round on object b"
        );
    }

    // Contiguous prefix, fully drained: every drawn timestamp was
    // published — writer commits each drew one, and every SSI
    // validation abort after the draw published a skip.
    let m = storm.heap.stats.snapshot();
    let expected_commits = threads as u64 * rounds as u64;
    assert_eq!(
        m.commits, expected_commits,
        "one commit per (thread, round)"
    );
    assert_eq!(
        storm.heap.current_ts(),
        m.commits + m.ts_skips,
        "watermark must drain to the drawn-timestamp clock with no holes"
    );
    assert_eq!(
        m.ts_skips,
        total_validation_aborts.load(Ordering::Relaxed),
        "every commit-time validation abort publishes exactly one skip"
    );
    if isolation == IsolationLevel::Snapshot {
        assert_eq!(m.ssi_aborts, 0);
        assert_eq!(m.ts_skips, 0);
    }

    // A final snapshot at the drained watermark sees the whole prefix.
    assert!(storm.check_snapshot() >= expected_commits);
}

#[test]
fn commit_storm_snapshot_isolation() {
    // Field-disjoint writers over overlapping objects: zero conflicts,
    // maximal commit-path concurrency.
    run_storm(IsolationLevel::Snapshot, CommitPath::Sharded, 100, false);
}

#[test]
fn commit_storm_serializable_with_validation_skips() {
    // Each writer also reads its ring neighbor's field, manufacturing
    // rw-antidependency chains: some commits are refused by validation
    // *after* drawing their timestamp, so the watermark must skip-fill
    // the holes — the storm asserts the prefix still drains tight.
    run_storm(IsolationLevel::Serializable, CommitPath::Sharded, 40, true);
}

#[test]
fn commit_storm_coarse_baseline_matches_semantics() {
    // The retained benchmarking baseline must hold exactly the same
    // invariants under exactly the same storm (it only serializes the
    // commit window, never changes semantics).
    run_storm(
        IsolationLevel::Snapshot,
        CommitPath::CoarseBaseline,
        50,
        false,
    );
}

/// One committed write of the storm: thread `t` committed `round` onto
/// both of its objects at timestamp `ts`.
#[derive(Clone, Copy)]
struct Committed {
    ts: Ts,
    thread: usize,
    round: i64,
}

/// One snapshot observation: at snapshot `ts`, thread `thread`'s field
/// held `value` on **both** of its objects (equality is asserted at
/// sample time — commit atomicity).
#[derive(Clone, Copy)]
struct Sample {
    ts: Ts,
    thread: usize,
    value: i64,
}

/// The reader-storm: N reader threads sample snapshots of hot objects
/// *while* the commit storm runs on the latch-free (sharded) heap; the
/// committed history is logged, then replayed onto a fresh
/// `CoarseBaseline` heap in commit-timestamp order, and every sampled
/// read must equal what the latched baseline holds after the same
/// prefix. Chains are pre-warmed and GC is pinned at 0, so every
/// sampled read is provably a chain hit: the read-side contention
/// counters (`read_base_loads`, `read_retries`) must come out **zero**
/// — the acceptance check that the hit path took no base `RwLock` and
/// never even looped.
fn run_reader_storm(isolation: IsolationLevel, rounds: i64) {
    let threads = storm_threads();
    let storm = Arc::new(setup(threads, isolation, CommitPath::Sharded));
    // Pin the GC horizon at 0 for the whole storm: warmed chains never
    // shrink, so no sampled read can miss into the base store.
    let gc_pin = storm.heap.snapshot();
    assert_eq!(gc_pin.ts(), 0);
    let log = Arc::new(Mutex::new(Vec::<Committed>::new()));
    // Warm every (object, field) the readers will sample with one
    // committed version (round -1), logged like any other commit.
    for t in 0..threads {
        let (ts, _) = storm.run_round(t, -1, false);
        log.lock().push(Committed {
            ts,
            thread: t,
            round: -1,
        });
    }
    storm.heap.stats.reset();

    let writers_live = Arc::new(AtomicU64::new(threads as u64));
    let samples: Vec<Sample> = std::thread::scope(|s| {
        // Writers: the same overlapping-object commit storm, logging
        // every successful commit.
        for t in 0..threads {
            let storm = Arc::clone(&storm);
            let log = Arc::clone(&log);
            let writers_live = Arc::clone(&writers_live);
            s.spawn(move || {
                for round in 0..rounds {
                    let (ts, _) =
                        storm.run_round(t, round, isolation == IsolationLevel::Serializable);
                    log.lock().push(Committed {
                        ts,
                        thread: t,
                        round,
                    });
                }
                writers_live.fetch_sub(1, Ordering::Relaxed);
            });
        }
        // Readers: sample hot pairs through fresh snapshots for as long
        // as writers are live, asserting per-sample atomicity (the two
        // objects one commit writes must agree) and collecting the
        // observations for the replay below.
        let mut readers = Vec::new();
        for r in 0..threads {
            let storm = Arc::clone(&storm);
            let writers_live = Arc::clone(&writers_live);
            readers.push(s.spawn(move || {
                let mut out = Vec::new();
                let mut t = r; // spread readers over the hot pairs
                while writers_live.load(Ordering::Relaxed) > 0 {
                    let snap = storm.heap.snapshot();
                    let (a, b) = storm.pair_of(t % storm.fields.len());
                    let field = storm.fields[t % storm.fields.len()];
                    let va = snap.read(a, field).unwrap();
                    let vb = snap.read(b, field).unwrap();
                    assert_eq!(va, vb, "torn commit visible at snapshot {}", snap.ts());
                    let Value::Int(value) = va else {
                        panic!("unexpected value type")
                    };
                    out.push(Sample {
                        ts: snap.ts(),
                        thread: t % storm.fields.len(),
                        value,
                    });
                    t = t.wrapping_add(1);
                }
                out
            }));
        }
        readers
            .into_iter()
            .flat_map(|r| r.join().unwrap())
            .collect()
    });

    // The latch-free acceptance check: every sampled read hit a chain
    // (no base-store RwLock on the read path) and the miss-revalidation
    // loop never ran. `snapshot_reads` counts exactly the sampled
    // reads, so the counters are not trivially zero.
    let m = storm.heap.stats.snapshot();
    assert!(m.snapshot_reads >= 2 * samples.len() as u64);
    assert_eq!(
        m.read_chain_hits, m.snapshot_reads,
        "every storm read must be a chain hit"
    );
    assert_eq!(
        m.read_base_loads, 0,
        "a latch-free read fell through to the base store's RwLock"
    );
    assert_eq!(m.read_retries, 0, "no chain miss, hence no revalidation");
    assert_eq!(
        m.watermark_waits, 0,
        "the ring never overflows at storm thread counts"
    );

    // Replay the committed history onto the seed-equivalent latched
    // baseline and check every observation against it: for each sample
    // (in snapshot order), apply all commits at or below its timestamp,
    // then compare the baseline's committed state.
    let mut history = Arc::try_unwrap(log)
        .ok()
        .expect("all writers joined")
        .into_inner();
    history.sort_unstable_by_key(|c| c.ts);
    let mut samples = samples;
    samples.sort_unstable_by_key(|s| s.ts);
    let baseline = setup(
        threads,
        IsolationLevel::Snapshot,
        CommitPath::CoarseBaseline,
    );
    assert_eq!(baseline.oids, storm.oids, "deterministic fixture layout");
    let mut applied = 0usize;
    for sample in &samples {
        while applied < history.len() && history[applied].ts <= sample.ts {
            let c = history[applied];
            let (a, b) = baseline.pair_of(c.thread);
            let field = baseline.fields[c.thread];
            let txn = TxnId(baseline.next_txn.fetch_add(1, Ordering::Relaxed));
            baseline.heap.begin(txn);
            baseline
                .heap
                .write(txn, a, field, Value::Int(c.round))
                .unwrap();
            baseline
                .heap
                .write(txn, b, field, Value::Int(c.round))
                .unwrap();
            baseline.heap.commit(txn).unwrap();
            applied += 1;
        }
        let (a, _) = baseline.pair_of(sample.thread);
        let field = baseline.fields[sample.thread];
        assert_eq!(
            baseline.heap.base().read(a, field),
            Ok(Value::Int(sample.value)),
            "latch-free read at snapshot {} diverged from the CoarseBaseline replay",
            sample.ts
        );
    }
    assert!(!samples.is_empty(), "the reader storm observed something");
}

#[test]
fn reader_storm_snapshot_isolation() {
    run_reader_storm(IsolationLevel::Snapshot, 60);
}

#[test]
fn reader_storm_serializable() {
    // Writers also read their ring neighbor, manufacturing
    // rw-antidependencies and validation skips: sampled snapshots must
    // still replay exactly (skipped timestamps committed nothing).
    run_reader_storm(IsolationLevel::Serializable, 30);
}

/// The cold-miss storm: the one read path the warmed storms above never
/// touch is the chain-*miss* fallback into the base store, and its
/// dangerous race is a reader's base read landing inside a concurrent
/// writer's install→abort window (the write-through is briefly visible
/// in the base store while the record is published, and the record is
/// unpublished again right after the rollback restore). Writers here
/// deliberately keep their chains cold — every transaction either
/// aborts (odd values) or commits and is immediately GC-eligible — so
/// readers constantly fall through to the base store while records
/// appear and disappear around them. A reader observing an odd value is
/// a dirty read of a rolled-back transaction; the seqlock-style
/// stability check in `read_as` must make that impossible.
#[test]
fn reader_storm_cold_miss_never_sees_aborted_writes() {
    let threads = storm_threads();
    let storm = Arc::new(setup(
        threads,
        IsolationLevel::Snapshot,
        CommitPath::Sharded,
    ));
    let writers_live = Arc::new(AtomicU64::new(threads as u64));
    let rounds: i64 = 200;
    std::thread::scope(|s| {
        // Writers: alternate commit (even round) / abort (odd round) on
        // the thread's own (object, field); no warmup, no GC pin — the
        // chain for the field vanishes on every abort (sole record) and
        // is reclaimed soon after every commit.
        for t in 0..threads {
            let storm = Arc::clone(&storm);
            let writers_live = Arc::clone(&writers_live);
            s.spawn(move || {
                let (a, b) = storm.pair_of(t);
                let field = storm.fields[t];
                for round in 0..rounds {
                    let txn = TxnId(storm.next_txn.fetch_add(1, Ordering::Relaxed));
                    storm.heap.begin(txn);
                    let even = round % 2 == 0;
                    let value = Value::Int(if even { round } else { -round });
                    let writes = storm
                        .heap
                        .write(txn, a, field, value.clone())
                        .and_then(|_| storm.heap.write(txn, b, field, value));
                    match writes {
                        Ok(_) if even => {
                            storm.heap.commit(txn).unwrap();
                        }
                        Ok(_) => {
                            storm.heap.abort(txn);
                        }
                        Err(MvccWriteError::Conflict(_)) => {
                            storm.heap.abort(txn);
                        }
                        Err(e) => panic!("cold-miss storm write failed: {e}"),
                    }
                }
                writers_live.fetch_sub(1, Ordering::Relaxed);
            });
        }
        // Readers: snapshot reads of the churning fields. Any negative
        // value is a rolled-back write leaking through the chain-miss
        // base fallback.
        for r in 0..threads {
            let storm = Arc::clone(&storm);
            let writers_live = Arc::clone(&writers_live);
            s.spawn(move || {
                let mut t = r;
                while writers_live.load(Ordering::Relaxed) > 0 {
                    let snap = storm.heap.snapshot();
                    let (a, b) = storm.pair_of(t % storm.fields.len());
                    let field = storm.fields[t % storm.fields.len()];
                    for oid in [a, b] {
                        match snap.read(oid, field) {
                            Ok(Value::Int(v)) => assert!(
                                v >= 0,
                                "dirty read: aborted value {v} visible at snapshot {}",
                                snap.ts()
                            ),
                            Ok(v) => panic!("unexpected value {v:?}"),
                            Err(e) => panic!("cold-miss read failed: {e}"),
                        }
                    }
                    t = t.wrapping_add(1);
                }
            });
        }
    });
    // The storm must actually have exercised the miss path — otherwise
    // this test silently degenerates into another warmed storm.
    let m = storm.heap.stats.snapshot();
    assert!(m.read_base_loads > 0, "the cold storm never missed a chain");
    assert_eq!(
        m.commits,
        threads as u64 * (rounds as u64).div_ceil(2),
        "every even round committed exactly once"
    );
}
