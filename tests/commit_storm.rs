//! Multi-threaded commit-storm stress tests for the sharded MVCC commit
//! path: N writer threads over overlapping OIDs, with concurrent
//! observers asserting the publication invariants the ordered watermark
//! guarantees —
//!
//! * **watermark monotonicity**: `current_ts` never moves backwards;
//! * **no lost or torn writes**: every transaction writes the same
//!   round number to its field on *two* shared objects, so any snapshot
//!   must see the two values equal (commit atomicity) and the final
//!   base state must hold every thread's last round (durability of the
//!   full prefix);
//! * **contiguous commit prefix**: when the storm drains, the watermark
//!   equals drawn-timestamps = writer commits + validation skips — no
//!   hole is ever left unpublished.
//!
//! Thread count comes from `FINECC_TEST_THREADS` (default 8; CI runs
//! 16), the ISSUE's knob for running the storm wider in CI than on a
//! laptop.

use finecc::model::{FieldId, FieldType, Oid, SchemaBuilder, TxnId, Value};
use finecc::mvcc::{CommitPath, IsolationLevel, MvccHeap, MvccWriteError};
use finecc::store::Database;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn storm_threads() -> usize {
    std::env::var("FINECC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}

struct Storm {
    heap: Arc<MvccHeap>,
    /// `fields[t]` is thread `t`'s private field — threads overlap on
    /// objects but never on (object, field), so the snapshot-level storm
    /// is conflict-free by field granularity.
    fields: Vec<FieldId>,
    /// Shared objects; thread `t` writes objects `t % K` and `(t+1) % K`.
    oids: Vec<Oid>,
    next_txn: AtomicU64,
}

fn setup(threads: usize, isolation: IsolationLevel, commit_path: CommitPath) -> Storm {
    let mut b = SchemaBuilder::new();
    {
        let c = b.class("storm");
        for t in 0..threads {
            c.field(&format!("f{t}"), FieldType::Int);
        }
    }
    let schema = Arc::new(b.finish().unwrap());
    let class = schema.class_by_name("storm").unwrap();
    let fields: Vec<FieldId> = (0..threads)
        .map(|t| schema.resolve_field(class, &format!("f{t}")).unwrap())
        .collect();
    let db = Arc::new(Database::new(Arc::clone(&schema)));
    let objects = (threads / 2).max(2);
    let oids: Vec<Oid> = (0..objects).map(|_| db.create(class)).collect();
    Storm {
        heap: Arc::new(MvccHeap::with_commit_path(db, isolation, commit_path)),
        fields,
        oids,
        next_txn: AtomicU64::new(1),
    }
}

impl Storm {
    fn pair_of(&self, thread: usize) -> (Oid, Oid) {
        (
            self.oids[thread % self.oids.len()],
            self.oids[(thread + 1) % self.oids.len()],
        )
    }

    /// Runs one round of thread `t`: write `round` into the thread's
    /// field on both of its objects (optionally reading the ring
    /// neighbor's field first, to manufacture rw-antidependencies under
    /// SSI), retrying validation/conflict aborts on a fresh snapshot.
    /// Returns the number of commit-time validation aborts hit.
    fn run_round(&self, t: usize, round: i64, read_neighbor: bool) -> u64 {
        let (a, b) = self.pair_of(t);
        let field = self.fields[t];
        let neighbor = self.fields[(t + 1) % self.fields.len()];
        let mut validation_aborts = 0;
        for _attempt in 0..10_000 {
            let txn = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
            self.heap.begin(txn);
            if read_neighbor {
                self.heap.read(txn, a, neighbor).unwrap();
            }
            let writes = self
                .heap
                .write(txn, a, field, Value::Int(round))
                .and_then(|_| self.heap.write(txn, b, field, Value::Int(round)));
            match writes {
                Ok(_) => match self.heap.commit(txn) {
                    Ok(_) => return validation_aborts,
                    Err(_) => validation_aborts += 1, // rolled back; retry
                },
                Err(MvccWriteError::Conflict(_)) => {
                    self.heap.abort(txn);
                }
                Err(e) => panic!("storm write failed: {e}"),
            }
        }
        panic!("thread {t} round {round}: retry budget exhausted");
    }

    /// Asserts the no-torn-write invariant on a fresh snapshot: for
    /// every thread, the two objects it writes atomically hold the same
    /// round value, and a second read returns the same answer
    /// (stability). Returns the snapshot timestamp.
    fn check_snapshot(&self) -> u64 {
        let snap = self.heap.snapshot();
        for (t, &field) in self.fields.iter().enumerate() {
            let (a, b) = self.pair_of(t);
            let va = snap.read(a, field).unwrap();
            let vb = snap.read(b, field).unwrap();
            assert_eq!(
                va,
                vb,
                "torn commit visible: thread {t} objects disagree at ts {}",
                snap.ts()
            );
            assert_eq!(snap.read(a, field).unwrap(), va, "snapshot unstable");
        }
        snap.ts()
    }
}

fn run_storm(isolation: IsolationLevel, commit_path: CommitPath, rounds: i64, read_neighbor: bool) {
    let threads = storm_threads();
    let storm = Arc::new(setup(threads, isolation, commit_path));
    let stop = Arc::new(AtomicBool::new(false));
    let total_validation_aborts = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| {
        // Watermark observer: current_ts must be monotone.
        {
            let storm = Arc::clone(&storm);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let now = storm.heap.current_ts();
                    assert!(now >= last, "watermark moved backwards: {last} -> {now}");
                    last = now;
                    std::thread::yield_now();
                }
            });
        }
        // Snapshot observer: reads must never see a torn commit and
        // snapshot timestamps must be monotone too (they come straight
        // off the watermark).
        {
            let storm = Arc::clone(&storm);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut last = 0;
                while !stop.load(Ordering::Relaxed) {
                    let ts = storm.check_snapshot();
                    assert!(ts >= last, "snapshot ts moved backwards");
                    last = ts;
                }
            });
        }
        // The writer storm itself.
        let mut writers = Vec::new();
        for t in 0..threads {
            let storm = Arc::clone(&storm);
            let aborts = Arc::clone(&total_validation_aborts);
            writers.push(s.spawn(move || {
                let mut local = 0;
                for round in 0..rounds {
                    local += storm.run_round(t, round, read_neighbor);
                }
                aborts.fetch_add(local, Ordering::Relaxed);
            }));
        }
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // No lost writes: the final base state holds every thread's last
    // round on both of its objects.
    for (t, &field) in storm.fields.iter().enumerate() {
        let (a, b) = storm.pair_of(t);
        assert_eq!(
            storm.heap.base().read(a, field),
            Ok(Value::Int(rounds - 1)),
            "thread {t} lost its last round on object a"
        );
        assert_eq!(
            storm.heap.base().read(b, field),
            Ok(Value::Int(rounds - 1)),
            "thread {t} lost its last round on object b"
        );
    }

    // Contiguous prefix, fully drained: every drawn timestamp was
    // published — writer commits each drew one, and every SSI
    // validation abort after the draw published a skip.
    let m = storm.heap.stats.snapshot();
    let expected_commits = threads as u64 * rounds as u64;
    assert_eq!(
        m.commits, expected_commits,
        "one commit per (thread, round)"
    );
    assert_eq!(
        storm.heap.current_ts(),
        m.commits + m.ts_skips,
        "watermark must drain to the drawn-timestamp clock with no holes"
    );
    assert_eq!(
        m.ts_skips,
        total_validation_aborts.load(Ordering::Relaxed),
        "every commit-time validation abort publishes exactly one skip"
    );
    if isolation == IsolationLevel::Snapshot {
        assert_eq!(m.ssi_aborts, 0);
        assert_eq!(m.ts_skips, 0);
    }

    // A final snapshot at the drained watermark sees the whole prefix.
    assert!(storm.check_snapshot() >= expected_commits);
}

#[test]
fn commit_storm_snapshot_isolation() {
    // Field-disjoint writers over overlapping objects: zero conflicts,
    // maximal commit-path concurrency.
    run_storm(IsolationLevel::Snapshot, CommitPath::Sharded, 100, false);
}

#[test]
fn commit_storm_serializable_with_validation_skips() {
    // Each writer also reads its ring neighbor's field, manufacturing
    // rw-antidependency chains: some commits are refused by validation
    // *after* drawing their timestamp, so the watermark must skip-fill
    // the holes — the storm asserts the prefix still drains tight.
    run_storm(IsolationLevel::Serializable, CommitPath::Sharded, 40, true);
}

#[test]
fn commit_storm_coarse_baseline_matches_semantics() {
    // The retained benchmarking baseline must hold exactly the same
    // invariants under exactly the same storm (it only serializes the
    // commit window, never changes semantics).
    run_storm(
        IsolationLevel::Snapshot,
        CommitPath::CoarseBaseline,
        50,
        false,
    );
}
