//! Crash-point recovery tests: the durability subsystem's acceptance
//! suite.
//!
//! The central harness simulates a crash **after every log-record
//! boundary** (torn final record included): it runs a workload against
//! a `wal-sync` heap, then — for every prefix of the final log that
//! ends on a frame boundary, plus mid-record and garbage-tail cuts —
//! materializes a "crashed" copy of the log directory, recovers it,
//! and asserts the recovered store equals **exactly** the committed
//! prefix:
//!
//! * every commit whose record is inside the prefix is present, field
//!   by field (replayed in commit-timestamp order over the
//!   checkpoint);
//! * no aborted transaction's write resurrects (aborted transactions
//!   never reach the log; the storm variant writes odd values in
//!   transactions it then aborts and asserts recovered values are
//!   always even);
//! * the timestamp clock and watermark are restored — including the
//!   holes left by SSI-refused commits (skip records) — so a commit on
//!   the recovered heap continues at `max_ts + 1` with no reuse and no
//!   watermark stall.
//!
//! A threaded storm variant (alongside `tests/commit_storm.rs`) runs
//! the same truncation sweep over a log produced by N concurrent
//! writer threads with interleaved aborts, and a lock-scheme test
//! drives the same machinery through the undo-projection redo path.
//! Thread count comes from `FINECC_TEST_THREADS` (default 8; CI 16).

use finecc::model::{FieldId, FieldType, Oid, SchemaBuilder, TxnId, Value};
use finecc::mvcc::{CommitPath, DurabilityLevel, IsolationLevel, MvccHeap, WalConfig};
use finecc::store::Database;
use finecc::wal::{LogReader, LogRecord, Wal};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn storm_threads() -> usize {
    std::env::var("FINECC_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(8)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("finecc-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Materializes a "crashed" copy of a log directory: checkpoints are
/// copied verbatim, the log is the given prefix plus an optional
/// garbage tail.
fn crashed_copy(src: &Path, dst: &Path, log_bytes: &[u8], cut: usize, garbage: &[u8]) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name.to_string_lossy().ends_with(".ckpt") {
            std::fs::copy(entry.path(), dst.join(name)).unwrap();
        }
    }
    let mut log = log_bytes[..cut].to_vec();
    log.extend_from_slice(garbage);
    std::fs::write(Wal::log_path(dst), log).unwrap();
}

/// The expected post-recovery value of every `(oid, field)`: the
/// genesis base overlaid with the prefix's commit records in
/// commit-timestamp order (log order within a timestamp) — the
/// reference implementation of the replay contract.
fn oracle(
    base: &BTreeMap<(Oid, FieldId), Value>,
    records: &[LogRecord],
) -> BTreeMap<(Oid, FieldId), Value> {
    let mut sorted: Vec<(usize, &LogRecord)> = records.iter().enumerate().collect();
    sorted.sort_by_key(|(idx, rec)| (rec.order_ts(), *idx));
    let mut state = base.clone();
    for (_, rec) in sorted {
        if let LogRecord::Commit { writes, .. } = rec {
            for w in writes {
                state.insert((w.oid, w.field), w.value.clone());
            }
        }
    }
    state
}

/// Highest commit/skip timestamp in a record prefix.
fn max_ts(records: &[LogRecord]) -> u64 {
    records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { ts, .. } | LogRecord::Skip { ts } => Some(*ts),
            _ => None,
        })
        .max()
        .unwrap_or(0)
}

fn base_state(db: &Database) -> BTreeMap<(Oid, FieldId), Value> {
    let schema = db.schema();
    let mut out = BTreeMap::new();
    for (oid, inst) in db.snapshot() {
        for &f in &schema.class(inst.class).all_fields {
            out.insert((oid, f), inst.get(schema, f).unwrap().clone());
        }
    }
    out
}

struct Fixture {
    heap: Arc<MvccHeap>,
    dir: PathBuf,
    oids: Vec<Oid>,
    fields: Vec<FieldId>,
    genesis: BTreeMap<(Oid, FieldId), Value>,
    next_txn: AtomicU64,
}

fn fixture(name: &str, isolation: IsolationLevel, objects: usize, fields: usize) -> Fixture {
    let mut b = SchemaBuilder::new();
    {
        let c = b.class("r");
        for f in 0..fields {
            c.field(&format!("f{f}"), FieldType::Int);
        }
    }
    let schema = Arc::new(b.finish().unwrap());
    let class = schema.class_by_name("r").unwrap();
    let field_ids: Vec<FieldId> = (0..fields)
        .map(|f| schema.resolve_field(class, &format!("f{f}")).unwrap())
        .collect();
    let db = Arc::new(Database::new(Arc::clone(&schema)));
    let oids: Vec<Oid> = (0..objects).map(|_| db.create(class)).collect();
    let dir = tmpdir(name);
    let wal = Arc::new(Wal::open(&dir, WalConfig::default()).unwrap());
    let heap = Arc::new(
        MvccHeap::with_wal(
            Arc::clone(&db),
            isolation,
            CommitPath::Sharded,
            Arc::clone(&wal),
        )
        .unwrap(),
    );
    assert_eq!(heap.durability(), DurabilityLevel::WalSync);
    let genesis = base_state(&db);
    Fixture {
        heap,
        dir,
        oids,
        fields: field_ids,
        genesis,
        next_txn: AtomicU64::new(1),
    }
}

impl Fixture {
    fn txn(&self) -> TxnId {
        TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed))
    }
}

/// Runs the truncation sweep: recovers a crashed copy at every frame
/// boundary (plus a mid-record cut and a garbage tail per boundary)
/// and asserts the recovered store is exactly the committed prefix,
/// with the clock/watermark restored and advancing without reuse.
fn assert_prefix_recovery(
    dir: &Path,
    genesis: &BTreeMap<(Oid, FieldId), Value>,
    isolation: IsolationLevel,
) {
    let log_bytes = LogReader::read_file(&Wal::log_path(dir)).unwrap();
    let parsed: Vec<(usize, LogRecord)> = LogReader::new(&log_bytes).unwrap().collect();
    assert!(!parsed.is_empty(), "the workload logged something");
    let crash_dir = dir.with_file_name(format!(
        "{}-crash",
        dir.file_name().unwrap().to_string_lossy()
    ));
    // Every boundary, 0 records included; each with three tail shapes:
    // clean cut, torn (half of the next frame), and garbage.
    let mut boundaries = vec![8usize]; // just past the magic
    boundaries.extend(parsed.iter().map(|&(off, _)| off));
    for (i, &cut) in boundaries.iter().enumerate() {
        let prefix: Vec<LogRecord> = parsed[..i].iter().map(|(_, r)| r.clone()).collect();
        let expected = oracle(genesis, &prefix);
        let expected_ts = max_ts(&prefix);
        let torn_cut = boundaries
            .get(i + 1)
            .map(|&next| cut + (next - cut) / 2)
            .filter(|&m| m > cut);
        let tails: Vec<(usize, &[u8])> = match torn_cut {
            Some(m) => vec![
                (cut, &[][..]),
                (m, &[][..]),
                (cut, &[0xFF, 0xFF, 0x00, 0x13][..]),
            ],
            None => vec![(cut, &[][..]), (cut, &[0xFF, 0xFF, 0x00, 0x13][..])],
        };
        for (cut, garbage) in tails {
            crashed_copy(dir, &crash_dir, &log_bytes, cut, garbage);
            let (heap, _info) = MvccHeap::recover(
                &crash_dir,
                isolation,
                CommitPath::Sharded,
                WalConfig::default(),
            )
            .unwrap();
            assert_eq!(
                heap.current_ts(),
                expected_ts,
                "clock restored to the prefix's horizon (cut {cut})"
            );
            for (&(oid, field), value) in &expected {
                assert_eq!(
                    heap.base().read(oid, field).as_ref(),
                    Ok(value),
                    "recovered {oid}.{field} at cut {cut} diverged from the committed prefix"
                );
            }
            // The recovered clock continues without reusing a
            // timestamp: the next writer commit lands at max_ts + 1
            // and is immediately visible (watermark restored dense —
            // a hole would stall publication forever).
            let (&(oid, field), _) = expected.iter().next().unwrap();
            let txn = TxnId(u64::MAX - 17);
            heap.begin(txn);
            heap.write(txn, oid, field, Value::Int(-999)).unwrap();
            let ts = heap.commit(txn).unwrap();
            assert_eq!(ts, expected_ts + 1, "no timestamp reuse, no gap");
            assert_eq!(heap.current_ts(), ts, "published without stalling");
        }
    }
    let _ = std::fs::remove_dir_all(&crash_dir);
}

/// One committed transaction writing `value` to `(oid, field)` pairs.
fn commit_writes(fx: &Fixture, writes: &[(Oid, FieldId)], value: i64) -> u64 {
    let txn = fx.txn();
    let ts = fx.heap.begin(txn);
    for &(oid, field) in writes {
        fx.heap
            .write_at(ts, txn, oid, field, Value::Int(value))
            .unwrap();
    }
    fx.heap.commit(txn).unwrap()
}

#[test]
fn crash_at_every_record_boundary_recovers_exact_committed_prefix() {
    for isolation in [IsolationLevel::Snapshot, IsolationLevel::Serializable] {
        let name = format!("boundary-{isolation:?}").to_lowercase();
        let fx = fixture(&name, isolation, 4, 3);
        // A varied committed history: single- and multi-object
        // transactions, merged records (two writes to one object), and
        // interleaved aborts that must leave no trace.
        for round in 0..8i64 {
            let o = fx.oids[(round as usize) % fx.oids.len()];
            let o2 = fx.oids[(round as usize + 1) % fx.oids.len()];
            let f = fx.fields[(round as usize) % fx.fields.len()];
            commit_writes(&fx, &[(o, f)], 10 + round);
            commit_writes(&fx, &[(o, f), (o2, f)], 100 + round);
            // Aborted transaction: writes a sentinel, then rolls back.
            let txn = fx.txn();
            let ts = fx.heap.begin(txn);
            fx.heap
                .write_at(ts, txn, o, fx.fields[0], Value::Int(-1))
                .unwrap();
            fx.heap.abort(txn);
        }
        let genesis = fx.genesis.clone();
        let dir = fx.dir.clone();
        drop(fx); // graceful close: flusher drains and joins
        assert_prefix_recovery(&dir, &genesis, isolation);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn ssi_skip_holes_are_restored_not_reused() {
    let fx = fixture("ssi-skip", IsolationLevel::Serializable, 2, 2);
    let (o1, o2) = (fx.oids[0], fx.oids[1]);
    let (fx0, fx1) = (fx.fields[0], fx.fields[1]);
    commit_writes(&fx, &[(o1, fx0)], 5);
    // Classic write skew: t1 reads o1.f0 writes o2.f1, t2 reads o2.f1
    // writes o1.f0 — at Serializable one of the two is refused at
    // commit after drawing its timestamp, logging a skip record.
    let (t1, t2) = (fx.txn(), fx.txn());
    fx.heap.begin(t1);
    fx.heap.begin(t2);
    fx.heap.read(t1, o1, fx0).unwrap();
    fx.heap.read(t2, o2, fx1).unwrap();
    fx.heap.write(t1, o2, fx1, Value::Int(11)).unwrap();
    fx.heap.write(t2, o1, fx0, Value::Int(22)).unwrap();
    let r1 = fx.heap.commit(t1);
    let r2 = fx.heap.commit(t2);
    // At least one of the pair is refused; the sticky-flag validator
    // may refuse both (the known over-abort, see the ROADMAP's precise
    // SSI item). Every refusal drew a timestamp → logged one skip.
    let refused = u64::from(r1.is_err()) + u64::from(r2.is_err());
    assert!(refused >= 1, "write skew admitted: {r1:?} / {r2:?}");
    let skips = fx.heap.stats.snapshot().ts_skips;
    assert_eq!(skips, refused);
    commit_writes(&fx, &[(o1, fx0)], 7);
    let live_ts = fx.heap.current_ts();
    let genesis = fx.genesis.clone();
    let dir = fx.dir.clone();
    drop(fx);
    // The full-log recovery restores the clock *including* the hole.
    let (heap, info) = MvccHeap::recover(
        &dir,
        IsolationLevel::Serializable,
        CommitPath::Sharded,
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(
        heap.current_ts(),
        live_ts,
        "skip hole counted into the clock"
    );
    assert_eq!(
        info.skips, skips,
        "every refused draw was recovered as a skip"
    );
    drop(heap);
    // And the boundary sweep holds across the skip record too.
    assert_prefix_recovery(&dir, &genesis, IsolationLevel::Serializable);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzzy_checkpoint_compacts_replay_and_preserves_extents() {
    let fx = fixture("checkpoint", IsolationLevel::Snapshot, 3, 2);
    let (o0, f0, f1) = (fx.oids[0], fx.fields[0], fx.fields[1]);
    commit_writes(&fx, &[(o0, f0)], 1);
    commit_writes(&fx, &[(o0, f1)], 2);
    // Extent events through the heap: a new durable object and a
    // durable delete.
    let class = fx.heap.base().class_of(o0).unwrap();
    let newborn = fx.heap.create(class);
    commit_writes(&fx, &[(newborn, f0)], 33);
    fx.heap.delete(fx.oids[2]).unwrap();
    let ckpt_ts = fx.heap.checkpoint().unwrap();
    assert_eq!(ckpt_ts, fx.heap.current_ts());
    commit_writes(&fx, &[(newborn, f1)], 44);
    commit_writes(&fx, &[(o0, f0)], 55);
    let live = base_state(fx.heap.base());
    let live_ts = fx.heap.current_ts();
    let live_len = fx.heap.base().len();
    let dir = fx.dir.clone();
    drop(fx);
    let (heap, info) = MvccHeap::recover(
        &dir,
        IsolationLevel::Snapshot,
        CommitPath::Sharded,
        WalConfig::default(),
    )
    .unwrap();
    assert_eq!(info.checkpoint_ts, ckpt_ts, "newest checkpoint used");
    assert_eq!(
        info.replayed, 2,
        "only commits past the checkpoint replay (creates/deletes predate it and no-op)"
    );
    assert_eq!(heap.current_ts(), live_ts);
    assert_eq!(
        heap.base().len(),
        live_len,
        "extents: create and delete both survive"
    );
    assert_eq!(
        base_state(heap.base()),
        live,
        "recovered state == live state"
    );
    // A recovered OID allocator never reuses: creating on the
    // recovered heap yields a fresh OID above everything seen.
    let fresh = heap.create(class);
    assert!(
        fresh > newborn,
        "OID allocator restored past {newborn}, got {fresh}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn threaded_commit_storm_recovers_acked_commits() {
    let threads = storm_threads();
    let per_thread = 30i64;
    let owned = fixture(
        "storm",
        IsolationLevel::Snapshot,
        (threads / 2).max(2),
        threads,
    );
    // Thread t owns field t (no ww conflicts); each committed txn
    // writes the SAME even value to two objects (commit atomicity
    // under truncation), and every third txn writes an odd sentinel
    // and aborts — an odd value after recovery is a resurrected
    // aborted write.
    std::thread::scope(|scope| {
        for t in 0..threads {
            let fx = &owned;
            scope.spawn(move || {
                let field = fx.fields[t];
                let a = fx.oids[t % fx.oids.len()];
                let b = fx.oids[(t + 1) % fx.oids.len()];
                for round in 0..per_thread {
                    let txn = fx.txn();
                    let ts = fx.heap.begin(txn);
                    if round % 3 == 2 {
                        fx.heap
                            .write_at(ts, txn, a, field, Value::Int(round * 2 + 1))
                            .unwrap();
                        fx.heap.abort(txn);
                        continue;
                    }
                    fx.heap
                        .write_at(ts, txn, a, field, Value::Int(round * 2))
                        .unwrap();
                    fx.heap
                        .write_at(ts, txn, b, field, Value::Int(round * 2))
                        .unwrap();
                    fx.heap.commit(txn).unwrap();
                }
            });
        }
    });
    let live = base_state(owned.heap.base());
    let genesis = owned.genesis.clone();
    let dir = owned.dir.clone();
    let fields = owned.fields.clone();
    let oids = owned.oids.clone();
    drop(owned); // joins the flusher before the log is read back
    let log_bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
    let parsed: Vec<(usize, LogRecord)> = LogReader::new(&log_bytes).unwrap().collect();
    let full: Vec<LogRecord> = parsed.iter().map(|(_, r)| r.clone()).collect();
    let expected = oracle(&genesis, &full);
    assert_eq!(
        expected, live,
        "replaying the full log over genesis reproduces the live store: \
         every acked commit is durable"
    );
    // Truncation sweep over the concurrent log: every sampled boundary
    // yields a consistent committed prefix — atomic per-txn (both
    // objects travel in one record), no aborted (odd) values, clock
    // restored. The full sweep is O(records²); every 7th boundary plus
    // the ends still crosses group-commit batches.
    let crash_dir = tmpdir("storm-crash");
    let mut boundaries = vec![8usize];
    boundaries.extend(parsed.iter().map(|&(off, _)| off));
    let sampled: Vec<usize> = (0..boundaries.len())
        .filter(|i| i % 7 == 0 || *i + 1 == boundaries.len())
        .collect();
    for &i in &sampled {
        let cut = boundaries[i];
        let prefix: Vec<LogRecord> = parsed[..i].iter().map(|(_, r)| r.clone()).collect();
        let expected = oracle(&genesis, &prefix);
        crashed_copy(&dir, &crash_dir, &log_bytes, cut, &[0xFE, 0x00]);
        let (heap, _info) = MvccHeap::recover(
            &crash_dir,
            IsolationLevel::Snapshot,
            CommitPath::Sharded,
            WalConfig::default(),
        )
        .unwrap();
        assert_eq!(
            heap.current_ts(),
            max_ts(&prefix),
            "clock == prefix horizon"
        );
        for (&(oid, field), value) in &expected {
            let got = heap.base().read(oid, field).unwrap();
            assert_eq!(&got, value, "cut {cut}: {oid}.{field}");
            if let Value::Int(n) = got {
                assert_eq!(n % 2, 0, "odd value resurrected from an aborted txn");
            }
        }
        // Commit atomicity across truncation: thread t's two objects
        // always agree on its field — both writes travel in one
        // record, so no cut can tear them apart.
        for (t, &field) in fields.iter().enumerate() {
            let a = oids[t % oids.len()];
            let b = oids[(t + 1) % oids.len()];
            assert_eq!(
                heap.base().read(a, field).unwrap(),
                heap.base().read(b, field).unwrap(),
                "thread {t}: torn two-object commit at cut {cut}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&crash_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lock_scheme_undo_projection_log_recovers() {
    use finecc::runtime::{run_txn, SchemeKind};
    use finecc::wal::recover_database;
    for kind in [SchemeKind::Tav, SchemeKind::Rw] {
        let dir = tmpdir(&format!("lock-{}", kind.name()));
        let env = finecc::runtime::Env::from_source(finecc::lang::parser::FIGURE1_SOURCE).unwrap();
        let c2 = env.schema.class_by_name("c2").unwrap();
        let f1 = env.schema.resolve_field(c2, "f1").unwrap();
        let f4 = env.schema.resolve_field(c2, "f4").unwrap();
        let o2 = env.db.create(c2);
        let db = Arc::clone(&env.db);
        let scheme = kind
            .build_durable(env, DurabilityLevel::WalSync, &dir)
            .unwrap();
        assert_eq!(scheme.durability(), DurabilityLevel::WalSync);
        for i in 1..=4 {
            let out = run_txn(scheme.as_ref(), 5, |txn| {
                scheme.send(txn, o2, "m2", &[Value::Int(i)])
            });
            assert!(out.is_committed());
        }
        let wal = scheme.wal_stats().unwrap();
        assert_eq!(wal.appends, 4, "one redo record per committed txn");
        assert!(wal.log_fsyncs >= 1);
        let live_f1 = db.read(o2, f1).unwrap();
        let live_f4 = db.read(o2, f4).unwrap();
        drop(scheme);
        let (recovered, info) = recover_database(&dir).unwrap();
        assert_eq!(info.replayed, 4);
        assert_eq!(recovered.read(o2, f1).unwrap(), live_f1, "{kind}");
        assert_eq!(recovered.read(o2, f4).unwrap(), live_f4, "{kind}");
        // The schema rebuilt from the checkpoint resolves the same ids
        // the language front-end assigned.
        assert_eq!(recovered.schema().resolve_field(c2, "f4"), Some(f4));
        // Prefix semantics hold for the lock-scheme log too: cutting
        // after the second record recovers exactly two transactions.
        let log_bytes = LogReader::read_file(&Wal::log_path(&dir)).unwrap();
        let parsed: Vec<(usize, LogRecord)> = LogReader::new(&log_bytes).unwrap().collect();
        let crash_dir = tmpdir(&format!("lock-{}-crash", kind.name()));
        crashed_copy(&dir, &crash_dir, &log_bytes, parsed[1].0, &[]);
        let (prefix_db, prefix_info) = recover_database(&crash_dir).unwrap();
        assert_eq!(prefix_info.replayed, 2);
        // m2 accumulates (f1 := f1 + p1): two replayed txns = 1 + 2.
        assert_eq!(prefix_db.read(o2, f1).unwrap(), Value::Int(3), "{kind}");
        let _ = std::fs::remove_dir_all(&crash_dir);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn truncation_keeps_every_frame_at_or_above_any_floor() {
    // The truncation-floor property: for an *arbitrary* floor,
    // `Wal::truncate_below(floor)` keeps exactly the frames with
    // `order_ts >= floor`, in order — and therefore the maintenance
    // pipeline (floor = ckpt_ts < recovery_floor) can never remove a
    // frame recovery could still need.
    use finecc::store::FieldImage;
    use finecc::wal::{recovery_floor, CheckpointData, LogReader as LR};
    let src = tmpdir("floor-prop");
    let mut b = SchemaBuilder::new();
    b.class("p").field("x", FieldType::Int);
    let schema = b.finish().unwrap();
    let class = schema.class_by_name("p").unwrap();
    let x = schema.resolve_field(class, "x").unwrap();
    {
        let wal = Wal::open(&src, WalConfig::default()).unwrap();
        wal.write_checkpoint(&CheckpointData {
            ckpt_ts: 6,
            replay_from: 7,
            next_oid: 100,
            schema: &schema,
            instances: vec![],
        })
        .unwrap();
        // Mixed record kinds so order_ts covers both `ts` and `as_of`.
        for ts in 1..=10u64 {
            match ts {
                5 => wal.append_create(5, Oid(50), class).unwrap(),
                6 => wal.append_delete(6, Oid(50)).unwrap(),
                _ => wal
                    .append_commit(
                        ts,
                        TxnId(ts),
                        &[FieldImage {
                            oid: Oid(1),
                            field: x,
                            value: Value::Int(ts as i64),
                        }],
                    )
                    .unwrap(),
            }
        }
    }
    let log_bytes = LR::read_file(&Wal::log_path(&src)).unwrap();
    let original: Vec<u64> = LR::new(&log_bytes)
        .unwrap()
        .map(|(_, r)| r.order_ts())
        .collect();
    assert_eq!(original, (1..=10).collect::<Vec<u64>>());
    let ckpt_ts = 6u64;
    let dst = tmpdir("floor-prop-cut");
    for floor in 0..=12u64 {
        crashed_copy(&src, &dst, &log_bytes, log_bytes.len(), &[]);
        {
            let wal = Wal::open(&dst, WalConfig::default()).unwrap();
            wal.truncate_below(floor).unwrap();
        }
        let kept: Vec<u64> = LR::new(&LR::read_file(&Wal::log_path(&dst)).unwrap())
            .unwrap()
            .map(|(_, r)| r.order_ts())
            .collect();
        let expected: Vec<u64> = original.iter().copied().filter(|&t| t >= floor).collect();
        assert_eq!(kept, expected, "floor {floor}");
        // Every legal pipeline floor (<= ckpt_ts < replay_from) keeps
        // all frames replay still needs, so `recovery_floor` — the ts
        // new appends must stay above — is unmoved by truncation.
        if floor <= ckpt_ts {
            let needed: Vec<u64> = original.iter().copied().filter(|&t| t >= 7).collect();
            assert!(
                needed.iter().all(|t| kept.contains(t)),
                "floor {floor} removed a frame above replay_from"
            );
            assert_eq!(recovery_floor(&dst).unwrap(), 11, "floor {floor}");
        }
    }
    let _ = std::fs::remove_dir_all(&dst);
    let _ = std::fs::remove_dir_all(&src);
}

#[test]
fn recovery_restarts_identically_after_a_crash_at_every_probe_site() {
    // The recovery-of-recovery matrix: crash a recovery at every
    // probe site × hit, then recover again and demand the exact
    // baseline state — the tentpole restartability contract.
    use finecc::chaos::{self, ChaosConfig, FaultKind, FaultPlan, FaultSpec, Site};
    let fx = fixture("restart-matrix", IsolationLevel::Snapshot, 3, 2);
    for round in 0..4i64 {
        let o = fx.oids[(round as usize) % fx.oids.len()];
        commit_writes(&fx, &[(o, fx.fields[0])], 10 + round);
    }
    fx.heap.checkpoint().unwrap();
    for round in 0..4i64 {
        let o = fx.oids[(round as usize) % fx.oids.len()];
        commit_writes(&fx, &[(o, fx.fields[1])], 20 + round);
    }
    let dir = fx.dir.clone();
    drop(fx);
    let (bheap, _info) = MvccHeap::recover(
        &dir,
        IsolationLevel::Snapshot,
        CommitPath::Sharded,
        WalConfig::default(),
    )
    .unwrap();
    let baseline = (base_state(bheap.base()), bheap.current_ts());
    drop(bheap);
    let mut crashes = 0u64;
    for site in Site::RECOVERY {
        for hit in 0..10_000u64 {
            let handle = chaos::install(ChaosConfig {
                seed: 1,
                threads: 0,
                faults: FaultPlan::of([FaultSpec::once(site, hit, FaultKind::Crash)]),
                replay: Vec::new(),
            });
            let attempt = finecc::wal::recover_database(&dir);
            let fired = chaos::crashed();
            drop(handle.finish());
            match attempt {
                Ok(_) => {
                    assert!(!fired, "recovery survived a crash fault at {site:?}");
                    break; // site exhausted: no hit `hit` this recovery
                }
                Err(e) => {
                    assert!(fired, "un-injected recovery failure at {site:?}: {e}");
                    crashes += 1;
                    let (heap, _i) = MvccHeap::recover(
                        &dir,
                        IsolationLevel::Snapshot,
                        CommitPath::Sharded,
                        WalConfig::default(),
                    )
                    .unwrap();
                    assert_eq!(
                        base_state(heap.base()),
                        baseline.0,
                        "state diverged after crash at {site:?} hit {hit}"
                    );
                    assert_eq!(heap.current_ts(), baseline.1, "{site:?} hit {hit}");
                }
            }
        }
    }
    assert!(
        crashes >= Site::RECOVERY.len() as u64,
        "the matrix crashed recovery only {crashes} times"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_faults_cost_space_never_durability() {
    // Every checkpoint probe site × {io-error, crash}: the checkpoint
    // fails, but nothing already acknowledged is lost — recovery (from
    // the genesis checkpoint) still reproduces the live store, and
    // after a transient io-error the next checkpoint goes through.
    use finecc::chaos::{self, ChaosConfig, FaultKind, FaultPlan, FaultSpec, Site};
    for site in Site::CHECKPOINT {
        for kind in [FaultKind::IoError, FaultKind::Crash] {
            let name = format!("ckpt-fault-{}-{kind:?}", site.name()).to_lowercase();
            let fx = fixture(&name, IsolationLevel::Snapshot, 2, 2);
            let (o, f) = (fx.oids[0], fx.fields[0]);
            commit_writes(&fx, &[(o, f)], 7);
            let handle = chaos::install(ChaosConfig {
                seed: 0,
                threads: 0, // fault-only: the checkpoint runs right here
                faults: FaultPlan::of([FaultSpec::once(site, 0, kind)]),
                replay: Vec::new(),
            });
            let refused = fx.heap.checkpoint();
            drop(handle.finish());
            assert!(
                refused.is_err(),
                "{site:?} {kind:?} must fail the checkpoint"
            );
            // The store keeps working, and — for a transient io-error —
            // so does the next checkpoint.
            commit_writes(&fx, &[(o, f)], 8);
            if kind == FaultKind::IoError {
                fx.heap.checkpoint().expect("io-error faults are transient");
                commit_writes(&fx, &[(o, f)], 9);
            }
            let live = base_state(fx.heap.base());
            let live_ts = fx.heap.current_ts();
            let dir = fx.dir.clone();
            drop(fx);
            let (heap, _info) = MvccHeap::recover(
                &dir,
                IsolationLevel::Snapshot,
                CommitPath::Sharded,
                WalConfig::default(),
            )
            .unwrap();
            assert_eq!(base_state(heap.base()), live, "{site:?} {kind:?}");
            assert_eq!(heap.current_ts(), live_ts, "{site:?} {kind:?}");
            drop(heap);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn log_and_replay_memory_stay_bounded_across_checkpoint_cycles() {
    // ≥ 3 checkpoint+truncation cycles: the log file never accumulates
    // across cycles, retention caps the checkpoint files, and a
    // recovery with a tiny reorder window still replays the tail —
    // peak memory O(window), not O(log).
    use finecc::wal::recover_database_with_window;
    let fx = fixture("cycles", IsolationLevel::Snapshot, 2, 2);
    let (o, f) = (fx.oids[0], fx.fields[0]);
    let per_cycle = 50i64;
    let mut sizes = Vec::new();
    for cycle in 0..4i64 {
        for i in 0..per_cycle {
            commit_writes(&fx, &[(o, f)], cycle * per_cycle + i);
        }
        fx.heap.checkpoint().unwrap();
        sizes.push(std::fs::metadata(Wal::log_path(&fx.dir)).unwrap().len());
    }
    // Truncation after each checkpoint compacts the log back to (at
    // most) the floor frame: growth per cycle never compounds.
    let bound = 8 + 3 * 64; // magic + a few frames of slack
    for (cycle, &size) in sizes.iter().enumerate() {
        assert!(
            size < bound,
            "cycle {cycle}: log is {size} bytes after truncation (bound {bound})"
        );
    }
    // Retention: 1 + 4 checkpoints written, the default keeps 2.
    let ckpts = std::fs::read_dir(&fx.dir)
        .unwrap()
        .filter(|e| {
            e.as_ref()
                .unwrap()
                .file_name()
                .to_string_lossy()
                .ends_with(".ckpt")
        })
        .count();
    assert_eq!(ckpts, 2, "retention keeps the newest two checkpoints");
    // A tail past the last checkpoint, then recover through a window
    // far smaller than the log.
    for i in 0..per_cycle {
        commit_writes(&fx, &[(o, f)], 1000 + i);
    }
    let live = base_state(fx.heap.base());
    let live_ts = fx.heap.current_ts();
    let dir = fx.dir.clone();
    drop(fx);
    let window = 8usize;
    let (rdb, info) = recover_database_with_window(&dir, window).unwrap();
    assert_eq!(info.replayed, per_cycle as u64, "the whole tail replays");
    assert!(
        info.peak_reorder <= window as u64 + 1,
        "replay buffered {} frames with a window of {window}",
        info.peak_reorder
    );
    assert_eq!(base_state(&rdb), live);
    assert_eq!(info.max_ts, live_ts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_heap_read_path_takes_no_new_latches() {
    // The acceptance guard for the read path: with a WAL attached, a
    // warmed chain read is still answered with zero base loads and
    // zero retries — durability work happens strictly at commit.
    let fx = fixture("readpath", IsolationLevel::Snapshot, 2, 2);
    let (o, f) = (fx.oids[0], fx.fields[0]);
    let pin = fx.heap.snapshot(); // pins GC so chains stay warm
    commit_writes(&fx, &[(o, f)], 9);
    fx.heap.stats.reset();
    let txn = fx.txn();
    let ts = fx.heap.begin(txn);
    for _ in 0..100 {
        assert_eq!(fx.heap.read_as(ts, Some(txn), o, f), Ok(Value::Int(9)));
    }
    fx.heap.abort(txn);
    let s = fx.heap.stats.snapshot();
    assert_eq!(s.read_chain_hits, 100, "every read a latch-free chain hit");
    assert_eq!(s.read_base_loads, 0);
    assert_eq!(s.read_retries, 0);
    drop(pin);
    let dir = fx.dir.clone();
    drop(fx);
    let _ = std::fs::remove_dir_all(&dir);
}
