//! Language-level integration: richer programs through the full
//! parse → compile → lock → interpret pipeline, checking both the
//! computed results and the concurrency artifacts they imply.

use finecc::core::compile;
use finecc::lang::build_schema;
use finecc::model::Value;
use finecc::runtime::{run_txn, Env, SchemeKind};

/// Linked-list traversal: cross-instance sends chase `next` references,
/// each hop a separately-locked top message.
#[test]
fn list_traversal_locks_each_node() {
    let src = r#"
class node {
  fields { v: integer; next: node; }
  method sum_from is
    if next = nil then
      return v
    end;
    return v + (send sum_from to next)
  end
}
"#;
    let env = Env::from_source(src).unwrap();
    let node = env.schema.class_by_name("node").unwrap();
    let v = env.schema.resolve_field(node, "v").unwrap();
    let next = env.schema.resolve_field(node, "next").unwrap();
    // Build 1 → 2 → 3 → 4 → 5.
    let mut prev = None;
    let mut head = None;
    for i in (1..=5).rev() {
        let o = env.db.create(node);
        env.db.write(o, v, Value::Int(i)).unwrap();
        if let Some(p) = prev {
            env.db.write(o, next, Value::Ref(p)).unwrap();
        }
        prev = Some(o);
        head = Some(o);
    }
    let head = head.unwrap();
    let scheme = SchemeKind::Tav.build(env);
    let out = run_txn(scheme.as_ref(), 3, |txn| {
        scheme.send(txn, head, "sum_from", &[])
    });
    assert_eq!(out.value(), Some(Value::Int(15)));
    // Five nodes → five (class, instance) lock pairs.
    assert_eq!(scheme.stats().requests, 10);
}

/// Recursion through self with a decreasing counter: the TAV fixpoint
/// over the cycle must still classify correctly, and execution must
/// terminate with the right answer.
#[test]
fn self_recursive_factorial() {
    let src = r#"
class math {
  fields { n: integer; acc: integer; }
  method fact is
    if n <= 1 then
      return acc
    end;
    acc := acc * n;
    n := n - 1;
    send fact to self;
    return acc
  end
}
"#;
    let (schema, bodies) = build_schema(src).unwrap();
    let compiled = compile(&schema, &bodies).unwrap();
    let math = schema.class_by_name("math").unwrap();
    let t = compiled.class(math);
    let fact = t.index_of("fact").unwrap();
    // The recursive TAV equals the DAV (self-loop adds nothing new).
    assert_eq!(t.tav(fact), t.dav(fact));
    assert!(!t.tav(fact).is_read_only());

    let env = Env::new(schema, bodies, compiled);
    let math = env.schema.class_by_name("math").unwrap();
    let n = env.schema.resolve_field(math, "n").unwrap();
    let acc = env.schema.resolve_field(math, "acc").unwrap();
    let o = env.db.create(math);
    env.db.write(o, n, Value::Int(6)).unwrap();
    env.db.write(o, acc, Value::Int(1)).unwrap();
    let scheme = SchemeKind::Tav.build(env);
    let out = run_txn(scheme.as_ref(), 3, |txn| scheme.send(txn, o, "fact", &[]));
    assert_eq!(out.value(), Some(Value::Int(720)));
}

/// Strings, floats, comparisons and while-loops end to end.
#[test]
fn mixed_types_and_loops() {
    let src = r#"
class gadget {
  fields { label: string; score: float; ticks: integer; }
  method rename(tag) is
    label := label + "-" + tag
  end
  method warm_up(target) is
    while ticks < target do
      ticks := ticks + 1;
      score := score + 0.5
    end
  end
  method summary is
    if score >= 2.0 and label <> "" then
      return label
    else
      return "(cold)"
    end
  end
}
"#;
    let env = Env::from_source(src).unwrap();
    let gadget = env.schema.class_by_name("gadget").unwrap();
    let label = env.schema.resolve_field(gadget, "label").unwrap();
    let o = env.db.create(gadget);
    env.db.write(o, label, Value::str("g1")).unwrap();
    let scheme = SchemeKind::Tav.build(env);

    let out = run_txn(scheme.as_ref(), 3, |txn| {
        scheme.send(txn, o, "rename", &[Value::str("x")])?;
        scheme.send(txn, o, "warm_up", &[Value::Int(5)])?;
        scheme.send(txn, o, "summary", &[])
    });
    assert_eq!(out.value(), Some(Value::str("g1-x")));
    let env = scheme.env();
    assert_eq!(env.read_named(o, "gadget", "ticks"), Value::Int(5));
    assert_eq!(env.read_named(o, "gadget", "score"), Value::Float(2.5));
}

/// A transaction spanning several messages accumulates locks (strict
/// 2PL) and an abort rolls back *all* of them.
#[test]
fn multi_message_transaction_atomicity() {
    let src = r#"
class acct {
  fields { bal: integer; }
  method set(v) is bal := v end
  method get is return bal end
}
"#;
    for kind in SchemeKind::ALL {
        let env = Env::from_source(src).unwrap();
        let acct = env.schema.class_by_name("acct").unwrap();
        let a = env.db.create(acct);
        let b = env.db.create(acct);
        let scheme = kind.build(env);
        // Transfer-like txn across both instances, then abort.
        let mut txn = scheme.begin();
        scheme.send(&mut txn, a, "set", &[Value::Int(100)]).unwrap();
        scheme
            .send(&mut txn, b, "set", &[Value::Int(-100)])
            .unwrap();
        scheme.abort(txn);
        let env = scheme.env();
        assert_eq!(env.read_named(a, "acct", "bal"), Value::Int(0), "{kind}");
        assert_eq!(env.read_named(b, "acct", "bal"), Value::Int(0), "{kind}");
    }
}

/// Referential integrity stays intact through scheme-driven execution,
/// and deletion is detected by the checker.
#[test]
fn integrity_checker_spots_dangling_after_delete() {
    let src = r#"
class owner {
  fields { pet: owner; }
  method adopt is skip end
}
"#;
    let env = Env::from_source(src).unwrap();
    let owner = env.schema.class_by_name("owner").unwrap();
    let pet = env.schema.resolve_field(owner, "pet").unwrap();
    let a = env.db.create(owner);
    let b = env.db.create(owner);
    env.db.write(a, pet, Value::Ref(b)).unwrap();
    assert!(finecc::store::check_integrity(&env.db).is_empty());
    env.db.delete(b).unwrap();
    assert_eq!(finecc::store::check_integrity(&env.db).len(), 1);
    assert_eq!(finecc::store::repair_dangling(&env.db), 1);
    assert!(finecc::store::check_integrity(&env.db).is_empty());
}
