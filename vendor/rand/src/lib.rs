//! Vendored, API-compatible subset of `rand`.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of the `rand` API it uses: [`rngs::StdRng`] (a
//! deterministic xoshiro256** generator), [`SeedableRng::seed_from_u64`],
//! and [`RngExt`] with `random_range`/`random_bool`. All experiment
//! randomness in this repository is seeded, so determinism — not
//! cryptographic quality — is the requirement.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics on empty ranges.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// A full-range random value of a primitive type.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Types constructible from raw generator output (for [`RngExt::random`]).
pub trait FromRng {
    /// Draws a uniformly distributed value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl FromRng for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, the float's full precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// The items most callers want.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{RngCore, RngExt, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            let w: i64 = rng.random_range(-50i64..50);
            assert!((-50..50).contains(&w));
            let x: usize = rng.random_range(2..=2);
            assert_eq!(x, 2);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let hits = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((0.25..0.35).contains(&frac), "got {frac}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
