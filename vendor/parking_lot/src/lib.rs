//! Vendored, API-compatible subset of `parking_lot`.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the tiny slice of `parking_lot` it actually uses, implemented
//! over `std::sync`. Differences from the real crate that matter here:
//!
//! * guards are infallible (`lock()`/`read()`/`write()` return guards
//!   directly, recovering from poisoning instead of returning `Result`),
//! * `Condvar::wait_for` takes the guard by `&mut` and returns a
//!   [`WaitTimeoutResult`],
//! * no fairness/eventual-fairness guarantees beyond what `std` gives.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive with an infallible, poison-recovering
/// `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]. Holds the `std` guard in an `Option` so
/// [`Condvar::wait_for`] can temporarily take it by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Poisoning (a panic
    /// while locked) is ignored: the data is returned as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks on the condvar until notified, releasing the guard while
    /// waiting and reacquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Like [`Condvar::wait`] but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with infallible, poison-recovering guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-access guard of a [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard of a [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "notification must arrive");
        }
        h.join().unwrap();
    }
}
