//! Vendored, API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of the criterion API its benches use: benchmark
//! groups, `bench_function`/`bench_with_input`, `iter`/`iter_with_setup`,
//! and throughput annotation. Measurement is honest but simple — no
//! outlier analysis or HTML reports: each benchmark is warmed up, then
//! sampled `sample_size` times, and the mean/min wall-clock per
//! iteration is printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Work-per-iteration annotation used to derive rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), sample_size, None, f);
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates the work performed per iteration.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// A benchmark identifier of the form `function/parameter`.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// The per-benchmark timing handle.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    measuring: bool,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to beat timer
    /// granularity.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if !self.measuring {
            // Calibration pass: find an iteration count that takes ≥ ~1ms.
            let mut iters = 1u64;
            loop {
                let t = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                let elapsed = t.elapsed();
                if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                    self.iters_per_sample = iters;
                    break;
                }
                iters *= 2;
            }
            self.measuring = true;
            return;
        }
        let t = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples
            .push(t.elapsed() / self.iters_per_sample as u32);
    }

    /// Times `routine` on a fresh `setup()` product, excluding setup time.
    pub fn iter_with_setup<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
    ) {
        if !self.measuring {
            self.iters_per_sample = 1;
            let input = setup();
            std::hint::black_box(routine(input));
            self.measuring = true;
            return;
        }
        let input = setup();
        let t = Instant::now();
        std::hint::black_box(routine(input));
        self.samples.push(t.elapsed());
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        measuring: false,
    };
    // Calibration/warmup call, then timed samples.
    f(&mut b);
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty");
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => {
            format!(" ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Throughput::Bytes(n) => format!(" ({:.0} B/s)", n as f64 / mean.as_secs_f64()),
    });
    println!(
        "  {label}: mean {mean:?}, min {min:?} over {} samples{}",
        b.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Re-export used by older bench code; prefer `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0);
    }

    #[test]
    fn iter_with_setup_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g2");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("id", 42), &3u64, |b, &n| {
            b.iter_with_setup(|| vec![0u8; n as usize], |v| v.len())
        });
        group.finish();
    }
}
