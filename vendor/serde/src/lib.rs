//! Vendored no-op stand-in for `serde`'s derive macros.
//!
//! The build environment has no access to crates.io. The workspace only
//! *derives* `Serialize`/`Deserialize` on its model types (as forward
//! compatibility for a future wire format) and never serializes anything,
//! so the derives expand to nothing. Swapping in the real `serde` is a
//! one-line Cargo change and requires no source edits.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
