//! Vendored, API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships the slice of proptest it uses: the [`proptest!`] macro over
//! deterministic seeded cases, range/tuple/`any`/`prop_map`/
//! [`collection::vec`]/[`prop_oneof!`] strategies, and the
//! `prop_assert*` family. Differences from the real crate: failing
//! inputs are *not* shrunk (the failing case's seed and index are
//! reported instead), and generation is always derived from a fixed
//! per-test seed, so runs are fully reproducible.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        self.inner.generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Full-range generation for primitive types (backs [`any`]).
pub trait Arbitrary {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random::<bool>()
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! tuple_strategies {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::RngExt;
    use std::ops::Range;

    /// A strategy for vectors of `element` with a length drawn from
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// An equal-weight union of type-erased strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Deterministic per-test, per-case generator. Public for the macros.
#[doc(hidden)]
pub fn rng_for(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the fully qualified test name, mixed with the case
    // index: every test gets its own reproducible stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let qualified = concat!(module_path!(), "::", stringify!($name));
                for case in 0..cfg.cases {
                    let mut prop_rng = $crate::rng_for(qualified, case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut prop_rng);)*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            qualified, case, cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) so the harness can report the generating seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

/// An equal-weight choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The common imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let mut rng = crate::rng_for("self_test", 0);
        let s = (0usize..5, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..25).contains(&v));
        }
        let vs = crate::collection::vec(0i64..3, 2..6);
        let v = vs.generate(&mut rng);
        assert!((2..6).contains(&v.len()));
        assert!(v.iter().all(|x| (0..3).contains(x)));
    }

    #[test]
    fn oneof_picks_every_arm() {
        let mut rng = crate::rng_for("self_test_oneof", 0);
        let s = prop_oneof![(0usize..1).prop_map(|_| 'a'), (0usize..1).prop_map(|_| 'b')];
        let drawn: std::collections::HashSet<char> =
            (0..64).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(drawn.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_cases(x in 0u32..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            if flip {
                prop_assert_eq!(x, x);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failures_report_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 5u32..6) {
                prop_assert!(x != 5, "forced failure");
            }
        }
        inner();
    }
}
